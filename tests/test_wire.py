"""Wire codec round-trips: randomized byte-identity and semantic oracles (PR 5 satellite).

Every wire type is pushed through ``encode → decode → encode`` on randomized
inputs and the two encodings must be **byte-identical** (via
:func:`~repro.service.wire.canonical_dumps`).  On top of the syntactic
checks, decoded objects are cross-checked against oracle semantics:

* a decoded partition *equals* the original partition (block structure, not
  just labels);
* a decoded Γ yields identical implication verdicts to the original on a
  query stream (fresh engines on both sides, so the check does not lean on
  interning identity);
* decoded relations/databases satisfy exactly the same FDs/PDs.

Malformed payloads must raise :class:`~repro.errors.ServiceError` — the CLI
turns those into structured per-line error results.
"""

import random

import pytest

from repro.dependencies.fpd import FunctionalPartitionDependency
from repro.dependencies.pd import PartitionDependency
from repro.errors import ServiceError
from repro.implication.alg import ImplicationEngine
from repro.partitions.kernel import Universe
from repro.partitions.partition import Partition, partition_from_mapping
from repro.relational.schema import DatabaseScheme, RelationScheme
from repro.service import wire
from repro.service.wire import QueryRequest, QueryResult, canonical_dumps
from repro.workloads.random_dependencies import random_fd_set, random_pd_set
from repro.workloads.random_expressions import random_expression
from repro.workloads.random_relations import random_database, random_relation
from repro.workloads.random_service import random_service_requests


def _double_trip(encoder, decoder, value):
    """encode → decode → encode; returns (first, second) canonical strings."""
    first = encoder(value)
    second = encoder(decoder(first))
    return canonical_dumps(first), canonical_dumps(second)


class TestExpressionAndDependencyCodecs:
    def test_expression_round_trip_is_interned_identity(self):
        for seed in range(80):
            expression = random_expression(["A", "B", "C", "D1"], seed=seed, max_complexity=5)
            encoded = wire.encode_expression(expression)
            assert wire.decode_expression(encoded) is expression
            assert wire.encode_expression(wire.decode_expression(encoded)) == encoded

    def test_pd_round_trip_byte_identical(self):
        for pd in random_pd_set(4, 60, seed=11, max_complexity=4):
            first, second = _double_trip(wire.encode_pd, wire.decode_pd, pd)
            assert first == second

    def test_pd_fpd_shorthand_decodes(self):
        pd = wire.decode_pd("A <= B")
        assert wire.encode_pd(pd) == "A = A * B"

    def test_fd_round_trip_byte_identical(self):
        for fd in random_fd_set(6, 40, seed=3, max_side=4):
            first, second = _double_trip(wire.encode_fd, wire.decode_fd, fd)
            assert first == second
            assert wire.decode_fd(wire.encode_fd(fd)) == fd

    def test_fpd_round_trip(self):
        fpd = FunctionalPartitionDependency(["A", "B"], ["C"])
        first, second = _double_trip(wire.encode_fpd, wire.decode_fpd, fpd)
        assert first == second
        assert wire.decode_fpd(wire.encode_fpd(fpd)) == fpd


class TestPartitionCodecs:
    def _random_partition(self, seed: int) -> Partition:
        rng = random.Random(seed)
        population = [f"x{i}" for i in range(rng.randint(1, 12))]
        return partition_from_mapping({x: rng.randint(0, 3) for x in population})

    def test_partition_round_trip_byte_identical(self):
        for seed in range(60):
            partition = self._random_partition(seed)
            first, second = _double_trip(wire.encode_partition, wire.decode_partition, partition)
            assert first == second

    def test_decoded_partition_equals_oracle_blocks(self):
        for seed in range(60):
            partition = self._random_partition(seed)
            decoded = wire.decode_partition(wire.encode_partition(partition))
            assert decoded == partition
            assert decoded.blocks == partition.blocks
            assert decoded.block_count() == partition.block_count()

    def test_universe_round_trip_preserves_id_order(self):
        universe = Universe(["b", "a", "c", "a"])
        encoded = wire.encode_universe(universe)
        assert encoded == ["b", "a", "c"]
        decoded = wire.decode_universe(encoded)
        assert decoded.elements == universe.elements
        assert wire.encode_universe(decoded) == encoded

    def test_universe_rejects_non_scalar_elements(self):
        with pytest.raises(ServiceError):
            wire.decode_universe(["a", ["b"]])
        with pytest.raises(ServiceError):
            wire.encode_universe(Universe([("t", "uple")]))

    def test_partition_rejects_non_scalar_elements(self):
        partition = Partition([[("tuple", "element")]])
        with pytest.raises(ServiceError):
            wire.encode_partition(partition)

    def test_partition_rejects_mismatched_lengths(self):
        with pytest.raises(ServiceError):
            wire.decode_partition({"universe": ["a", "b"], "labels": [0]})


class TestRelationalCodecs:
    def test_relation_round_trip_byte_identical(self):
        for seed in range(25):
            relation = random_relation(4, 6, domain_size=3, seed=seed)
            first, second = _double_trip(wire.encode_relation, wire.decode_relation, relation)
            assert first == second
            assert wire.decode_relation(wire.encode_relation(relation)) == relation

    def test_database_round_trip_byte_identical_and_semantics(self):
        for seed in range(15):
            database = random_database(3, 5, 3, 4, seed=seed)
            first, second = _double_trip(wire.encode_database, wire.decode_database, database)
            assert first == second
            decoded = wire.decode_database(wire.encode_database(database))
            assert decoded == database
            assert decoded.universe == database.universe
            # Decoded relations satisfy exactly the same FDs as the originals.
            for fd in random_fd_set(5, 10, seed=seed + 1, max_side=2):
                for original, copy in zip(
                    sorted(database.relations, key=lambda r: r.name),
                    sorted(decoded.relations, key=lambda r: r.name),
                ):
                    if fd.attributes <= original.attributes:
                        assert original.satisfies_fd(fd) == copy.satisfies_fd(fd)

    def test_scheme_round_trip(self):
        scheme = RelationScheme("r", ["B", "A", "C"])
        first, second = _double_trip(wire.encode_scheme, wire.decode_scheme, scheme)
        assert first == second
        assert wire.decode_scheme(wire.encode_scheme(scheme)) == scheme

    def test_database_scheme_round_trip(self):
        scheme = DatabaseScheme([RelationScheme("s", "CD"), RelationScheme("r", "AB")])
        first = canonical_dumps(wire.encode_database_scheme(scheme))
        decoded = wire.decode_database_scheme(wire.encode_database_scheme(scheme))
        assert canonical_dumps(wire.encode_database_scheme(decoded)) == first


class TestGammaOracle:
    """A decoded Γ must answer implication exactly like the original."""

    def test_decoded_gamma_yields_identical_verdicts(self):
        for seed in range(12):
            theory = random_pd_set(4, 5, seed=seed, max_complexity=3)
            decoded_theory = [wire.decode_pd(wire.encode_pd(pd)) for pd in theory]
            queries = random_pd_set(4, 12, seed=seed + 100, max_complexity=3)
            original_engine = ImplicationEngine(theory)
            decoded_engine = ImplicationEngine(decoded_theory)
            for query in queries:
                assert original_engine.implies(query) == decoded_engine.implies(query)


class TestRequestResultCodecs:
    def test_request_stream_round_trip_byte_identical(self):
        requests = random_service_requests(
            60, seed=21, include_cad=True, theory_count=3, pds_per_theory=3
        )
        for request in requests:
            first, second = _double_trip(wire.encode_request, wire.decode_request, request)
            assert first == second

    def test_decoded_request_fields_reintern(self):
        request = QueryRequest(
            kind="implies",
            id="r1",
            dependencies=(PartitionDependency.parse("A = A*B"),),
            query=PartitionDependency.parse("A = A * (B + C)"),
        )
        decoded = wire.decode_request(wire.encode_request(request))
        assert decoded.query.left is request.query.left
        assert decoded.query.right is request.query.right
        assert decoded.dependencies[0].left is request.dependencies[0].left

    def test_request_cache_key_is_id_independent(self):
        base = QueryRequest(kind="implies", query=PartitionDependency.parse("A = A*B"))
        assert wire.request_cache_key(base) == wire.request_cache_key(base.with_id("other"))
        different = QueryRequest(kind="implies", query=PartitionDependency.parse("B = B*A"))
        assert wire.request_cache_key(base) != wire.request_cache_key(different)

    def test_result_round_trip_byte_identical(self):
        results = [
            QueryResult(kind="implies", ok=True, id="a", value={"implied": True}),
            QueryResult(kind="consistent", ok=True, value={"consistent": False, "method": "cad"}),
            QueryResult(kind="quotient", ok=False, id="z", error={"type": "X", "message": "m"}),
        ]
        for result in results:
            first, second = _double_trip(wire.encode_result, wire.decode_result, result)
            assert first == second

    def test_cached_flag_is_transport_only(self):
        plain = QueryResult(kind="implies", ok=True, value={"implied": True})
        cached = QueryResult(kind="implies", ok=True, value={"implied": True}, cached=True)
        assert wire.encode_result(plain) == wire.encode_result(cached)
        assert plain == cached  # compare=False on the flag

    def test_jsonl_helpers_round_trip(self):
        requests = random_service_requests(10, seed=5)
        text = wire.requests_to_jsonl(requests)
        lines = text.strip().split("\n")
        decoded = [wire.load_request_line(line) for line in lines]
        assert [wire.dump_request_line(r) for r in decoded] == lines


class TestMalformedPayloads:
    @pytest.mark.parametrize(
        "payload",
        [
            "not json at all",
            '{"v": 1, "kind": "implies"}',  # missing query
            '{"v": 1, "kind": "nonsense", "query": "A = B"}',
            '{"kind": "implies", "query": "A = B", "v": 999}',
            '{"v": 1, "kind": "consistent", "database": {"relations": []}, "method": "psychic"}',
            '{"v": 1, "kind": "equivalent", "left": "A +* B", "right": "A"}',
            '{"v": 1, "kind": "quotient", "pool": []}',
            '{"v": 1, "kind": "fd_implies", "fds": [{"lhs": ["A"]}],'
            ' "target": {"lhs": ["A"], "rhs": ["B"]}}',
            '{"v": 1, "kind": "counterexample", "query": "A = B", "max_pool": "oops"}',
            '{"v": 1, "kind": "counterexample", "query": "A = B", "max_pool": [400]}',
            '{"v": 1, "kind": "counterexample", "query": "A = B", "max_pool": null}',
            '{"v": 1, "kind": "consistent", "database": {"relations": []}, "max_nodes": "x"}',
            '{"v": 1, "kind": "consistent", "database": {"relations": []}, "max_nodes": true}',
        ],
    )
    def test_bad_request_lines_raise_service_error(self, payload):
        with pytest.raises(ServiceError):
            wire.load_request_line(payload)

    def test_missing_version_is_rejected_explicitly(self):
        # The version is required, never defaulted: an envelope without "v"
        # is refused with a message that names the field.
        with pytest.raises(ServiceError, match="missing the 'v' version field"):
            wire.load_request_line('{"kind": "implies", "query": "A = B"}')
        with pytest.raises(ServiceError, match="missing the 'v' version field"):
            wire.decode_result({"kind": "implies", "ok": True, "value": {}})

    def test_explicit_null_max_nodes_means_unbounded(self):
        request = wire.load_request_line(
            '{"v": 1, "kind": "consistent", "database": {"relations": '
            '[{"name": "r", "attributes": ["A"], "rows": [["a"]]}]}, "max_nodes": null}'
        )
        assert request.max_nodes is None

    def test_bad_result_payloads_raise_service_error(self):
        for payload in (
            {"kind": "implies"},
            {"kind": "implies", "ok": "yes"},
            {"kind": "implies", "ok": True},
            {"kind": "implies", "ok": False, "error": "boom"},
            {"kind": "implies", "ok": True, "value": {}, "v": 99},
        ):
            with pytest.raises(ServiceError):
                wire.decode_result(payload)

    def test_validate_request_rejects_missing_fields(self):
        with pytest.raises(ServiceError):
            wire.validate_request(QueryRequest(kind="equivalent"))
        with pytest.raises(ServiceError):
            wire.validate_request(QueryRequest(kind="consistent"))


class TestDeadlineOnTheWire:
    def test_deadline_round_trips_on_the_current_version(self):
        request = QueryRequest(
            kind="implies", id="q1", query=PartitionDependency.parse("A = A*B"), deadline_ms=250
        )
        payload = wire.encode_request(request)
        assert payload["v"] == wire.WIRE_VERSION == 3
        assert payload["deadline_ms"] == 250
        assert wire.decode_request(payload).deadline_ms == 250

    def test_requests_without_deadline_omit_the_field(self):
        request = QueryRequest(kind="implies", query=PartitionDependency.parse("A = A*B"))
        assert "deadline_ms" not in wire.encode_request(request)
        assert wire.decode_request(wire.encode_request(request)).deadline_ms is None

    def test_version_1_payloads_still_decode(self):
        request = wire.load_request_line('{"v": 1, "kind": "implies", "query": "A = A * B"}')
        assert request.deadline_ms is None

    def test_version_1_payload_cannot_carry_a_deadline(self):
        with pytest.raises(ServiceError, match="wire version 2"):
            wire.load_request_line(
                '{"v": 1, "kind": "implies", "query": "A = A * B", "deadline_ms": 100}'
            )

    @pytest.mark.parametrize("value", ["100", True, 0, -5, 1.5])
    def test_invalid_deadline_values_are_rejected(self, value):
        payload = {"v": 2, "kind": "implies", "query": "A = A * B", "deadline_ms": value}
        with pytest.raises(ServiceError):
            wire.decode_request(payload)

    def test_cache_key_ignores_deadline(self):
        query = PartitionDependency.parse("A = A*B")
        with_deadline = QueryRequest(kind="implies", id="a", query=query, deadline_ms=100)
        without = QueryRequest(kind="implies", id="b", query=query)
        assert wire.request_cache_key(with_deadline) == wire.request_cache_key(without)
