"""Tests for repro.relational.multivalued_dependencies."""

import pytest

from repro.errors import DependencyError
from repro.relational.multivalued_dependencies import MultivaluedDependency, theorem5_mvd
from repro.relational.relations import Relation


class TestMvd:
    def test_theorem5_mvd_shape(self):
        mvd = theorem5_mvd()
        assert set(mvd.lhs) == {"A"} and set(mvd.rhs) == {"B"} and set(mvd.universe) == {"A", "B", "C"}

    def test_figure2_r1_satisfies(self):
        r1 = Relation.from_strings("r1", "ABC", ["a.b1.c1", "a.b1.c2", "a.b2.c1", "a.b2.c2"])
        assert theorem5_mvd().is_satisfied_by(r1)

    def test_figure2_r2_violates(self):
        r2 = Relation.from_strings("r2", "ABC", ["a.b1.c1", "a.b2.c2", "a.b1.c2"])
        assert not theorem5_mvd().is_satisfied_by(r2)

    def test_complement_equivalence(self):
        # X ->> Y and X ->> (U - X - Y) are satisfied by exactly the same relations.
        r1 = Relation.from_strings("r1", "ABC", ["a.b1.c1", "a.b1.c2", "a.b2.c1", "a.b2.c2"])
        r2 = Relation.from_strings("r2", "ABC", ["a.b1.c1", "a.b2.c2", "a.b1.c2"])
        mvd = theorem5_mvd()
        comp = mvd.complement()
        for relation in (r1, r2):
            assert mvd.is_satisfied_by(relation) == comp.is_satisfied_by(relation)

    def test_trivial_mvds(self):
        assert MultivaluedDependency("A", "A", "ABC").is_trivial()
        assert MultivaluedDependency("A", "BC", "ABC").is_trivial()
        assert not theorem5_mvd().is_trivial()

    def test_fd_implies_mvd(self):
        # A relation satisfying the FD A -> B satisfies the MVD A ->> B.
        relation = Relation.from_strings("r", "ABC", ["a.b.c1", "a.b.c2", "a2.b2.c1"])
        assert theorem5_mvd().is_satisfied_by(relation)

    def test_scheme_mismatch_rejected(self):
        relation = Relation.from_strings("r", "AB", ["a.b"])
        with pytest.raises(DependencyError):
            theorem5_mvd().is_satisfied_by(relation)

    def test_attributes_outside_universe_rejected(self):
        with pytest.raises(DependencyError):
            MultivaluedDependency("A", "D", "ABC")

    def test_empty_side_rejected(self):
        with pytest.raises(DependencyError):
            MultivaluedDependency("", "B", "ABC")

    def test_single_tuple_always_satisfies(self):
        relation = Relation.from_strings("r", "ABC", ["a.b.c"])
        assert theorem5_mvd().is_satisfied_by(relation)
