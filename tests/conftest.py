"""Shared fixtures and hypothesis strategies for the repro test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.expressions.ast import Attr, PartitionExpression, Product, Sum
from repro.partitions.partition import Partition
from repro.relational.relations import Relation
from repro.relational.tuples import Row

# ---------------------------------------------------------------------------
# Plain fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def employee_relation() -> Relation:
    """A small relation satisfying A -> B but not B -> A (Example a flavour)."""
    return Relation.from_strings(
        "emp", "ABC", ["e1.m1.d1", "e2.m1.d1", "e3.m2.d2", "e4.m2.d1"]
    )


@pytest.fixture
def figure1_relation() -> Relation:
    """The database relation of Figure 1."""
    return Relation.from_strings("R", "ABC", ["a.b.c", "a2.b1.c", "a2.b1.c1", "a1.b.c1"])


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20260617)


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

ATTRIBUTE_POOL = ["A", "B", "C", "D"]
SYMBOL_POOL = ["s1", "s2", "s3"]


@st.composite
def partitions(draw, min_size: int = 0, max_size: int = 6) -> Partition:
    """A random partition of a subset of {0..max_size-1}."""
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    if size == 0:
        return Partition()
    labels = draw(st.lists(st.integers(min_value=0, max_value=3), min_size=size, max_size=size))
    return Partition.from_function(range(size), lambda i: labels[i])


@st.composite
def partitions_over(draw, population: tuple = (0, 1, 2, 3, 4)) -> Partition:
    """A random partition of a fixed population (for axioms needing shared populations)."""
    labels = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(population) - 1),
            min_size=len(population),
            max_size=len(population),
        )
    )
    return Partition.from_function(population, lambda i: labels[population.index(i)])


@st.composite
def expressions(draw, max_depth: int = 3) -> PartitionExpression:
    """A random partition expression over the ATTRIBUTE_POOL."""
    if max_depth <= 0 or draw(st.booleans()):
        return Attr(draw(st.sampled_from(ATTRIBUTE_POOL)))
    left = draw(expressions(max_depth=max_depth - 1))
    right = draw(expressions(max_depth=max_depth - 1))
    return Product(left, right) if draw(st.booleans()) else Sum(left, right)


@st.composite
def small_relations(draw, attributes: str = "ABC", max_rows: int = 5) -> Relation:
    """A random small relation over the given attributes with a tiny symbol pool."""
    row_count = draw(st.integers(min_value=1, max_value=max_rows))
    rows = []
    for _ in range(row_count):
        rows.append(
            Row({a: draw(st.sampled_from(SYMBOL_POOL)) + a.lower() for a in attributes})
        )
    return Relation.from_rows("r", attributes, rows)
