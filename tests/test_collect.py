"""benchmarks/collect.py: merging BENCH_*.json artifacts into one trajectory file."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def collect():
    spec = importlib.util.spec_from_file_location(
        "benchmarks_collect", REPO_ROOT / "benchmarks" / "collect.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def _fake_artifact(path: Path, names: list, group: str) -> None:
    payload = {
        "machine_info": {"cpu": {"brand_raw": "TestCPU"}},
        "experiment_map": {group: "a fake experiment"},
        "benchmarks": [
            {
                "name": name,
                "group": group,
                "params": {"n": i},
                "stats": {
                    "min": 0.1 * (i + 1),
                    "max": 0.2 * (i + 1),
                    "mean": 0.15 * (i + 1),
                    "stddev": 0.01,
                    "median": 0.15,
                    "rounds": 3,
                    "iterations": 1,
                    "data": [0.1, 0.2, 0.15],  # must be dropped from the summary
                },
            }
            for i, name in enumerate(names)
        ],
    }
    path.write_text(json.dumps(payload), encoding="utf-8")


class TestCollect:
    def test_merges_globbed_artifacts(self, collect, tmp_path, monkeypatch):
        _fake_artifact(tmp_path / "BENCH_b.json", ["t2", "t1"], "EXP-B")
        _fake_artifact(tmp_path / "BENCH_a.json", ["t3"], "EXP-A")
        monkeypatch.chdir(tmp_path)
        assert collect.main([]) == 0

        trajectory = json.loads((tmp_path / "BENCH_trajectory.json").read_text())
        assert trajectory["version"] == collect.TRAJECTORY_VERSION
        assert trajectory["artifact_count"] == 2
        assert trajectory["total_benchmarks"] == 3
        files = [a["file"] for a in trajectory["artifacts"]]
        assert files == ["BENCH_a.json", "BENCH_b.json"]
        # Benchmarks are sorted and summarized (no raw round data).
        names = [b["name"] for b in trajectory["artifacts"][1]["benchmarks"]]
        assert names == ["t1", "t2"]
        stats = trajectory["artifacts"][1]["benchmarks"][0]["stats"]
        assert "data" not in stats
        assert stats["rounds"] == 3
        assert trajectory["artifacts"][0]["machine_info"] == "TestCPU"

    def test_rerun_excludes_its_own_output(self, collect, tmp_path, monkeypatch):
        _fake_artifact(tmp_path / "BENCH_a.json", ["t1"], "EXP-A")
        monkeypatch.chdir(tmp_path)
        assert collect.main([]) == 0
        assert collect.main([]) == 0  # BENCH_trajectory.json must not ingest itself
        trajectory = json.loads((tmp_path / "BENCH_trajectory.json").read_text())
        assert trajectory["artifact_count"] == 1

    def test_explicit_files_and_output(self, collect, tmp_path):
        first = tmp_path / "BENCH_x.json"
        _fake_artifact(first, ["t1"], "EXP-X")
        out = tmp_path / "merged.json"
        assert collect.main([str(first), "-o", str(out)]) == 0
        assert json.loads(out.read_text())["artifact_count"] == 1

    def test_missing_files_fail(self, collect, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert collect.main([]) == 2  # no artifacts at all
        assert collect.main(["BENCH_ghost.json"]) == 2
        assert "missing artifact" in capsys.readouterr().err

    def test_min_artifacts_guards_against_dropped_exports(
        self, collect, tmp_path, monkeypatch, capsys
    ):
        _fake_artifact(tmp_path / "BENCH_a.json", ["t1"], "EXP-A")
        _fake_artifact(tmp_path / "BENCH_b.json", ["t2"], "EXP-B")
        monkeypatch.chdir(tmp_path)
        assert collect.main(["--min-artifacts", "2"]) == 0
        assert collect.main(["--min-artifacts", "3"]) == 2
        assert "--min-artifacts 3" in capsys.readouterr().err
        # The passing run still wrote a complete trajectory.
        trajectory = json.loads((tmp_path / "BENCH_trajectory.json").read_text())
        assert trajectory["artifact_count"] == 2
