"""End-to-end acceptance for continuous serving: the asyncio socket server.

The serving contract, pinned over real sockets:

* the 200-request acceptance stream (the same seeded mix the file-CLI test
  uses) is answered **byte-identically** to the in-process batch pipeline —
  over a single connection, and over 8 concurrent connections with the
  stream split round-robin (per-connection order preserved while the
  micro-batcher windows across connections);
* control lines (``stats``/``ping``) answer in-order with latency
  percentiles and window occupancy;
* undecodable lines become error results that echo the request ``id`` when
  one parsed, falling back to the connection line number;
* graceful drain answers everything admitted even when the open window's
  timer is nowhere near firing;
* the ``shed`` overload policy answers surplus requests with well-formed
  ``Overloaded`` error results while admitted requests still succeed;
* ``python -m repro.service serve`` announces its port, serves, and drains
  cleanly on SIGINT.
"""

import asyncio
import json
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.service.config import ServiceConfig
from repro.service.planner import execute_plan
from repro.service.server import QueryServer, serve_stream
from repro.service.session import Session
from repro.service.wire import (
    dump_request_line,
    dump_result_line,
    load_result_line,
    requests_to_jsonl,
)
from repro.workloads.random_service import random_service_requests

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")


def run(coro, timeout=120):
    return asyncio.run(asyncio.wait_for(coro, timeout))


@pytest.fixture(scope="module")
def acceptance_stream():
    """The mixed 200-request stream of the acceptance criterion (same seed as the CLI test)."""
    return random_service_requests(
        200,
        seed=20260730,
        attribute_count=5,
        theory_count=2,
        pds_per_theory=3,
        max_complexity=2,
        kind_weights={"implies": 5, "equivalent": 3, "consistent": 3, "counterexample": 1},
    )


@pytest.fixture(scope="module")
def expected_lines(acceptance_stream):
    """Direct in-process batch-pipeline answers (the byte-identity oracle)."""
    return [dump_result_line(r) for r in execute_plan(Session(), acceptance_stream)]


async def _converse(host, port, lines):
    """Send request lines over one connection; return the same number of answers."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(("".join(line + "\n" for line in lines)).encode("utf-8"))
        await writer.drain()
        writer.write_eof()
        answers = []
        for _ in lines:
            raw = await reader.readline()
            assert raw, "server closed the connection before answering"
            answers.append(raw.decode("utf-8").rstrip("\n"))
        return answers
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _poll(predicate, timeout=10.0):
    deadline = time.perf_counter() + timeout
    while not predicate():
        assert time.perf_counter() < deadline, "polling timed out"
        await asyncio.sleep(0.002)


class TestByteIdentity:
    def test_single_connection_matches_batch_pipeline(self, acceptance_stream, expected_lines):
        config = ServiceConfig(max_wait_ms=5.0, max_batch=32)
        lines, stats = run(serve_stream(requests_to_jsonl(acceptance_stream), config))
        assert lines == expected_lines
        assert stats["requests"]["answered"] == len(acceptance_stream)
        assert stats["requests"]["shed"] == 0
        assert stats["windows"]["count"] >= 1

    def test_eight_concurrent_connections_preserve_per_connection_order(
        self, acceptance_stream, expected_lines
    ):
        by_id = {req.id: line for req, line in zip(acceptance_stream, expected_lines)}
        slices = [acceptance_stream[i::8] for i in range(8)]

        async def scenario():
            config = ServiceConfig(max_wait_ms=10.0, max_batch=32)
            async with QueryServer(config) as server:
                host, port = server.host, server.port
                answers = await asyncio.gather(
                    *(
                        _converse(host, port, [dump_request_line(r) for r in part])
                        for part in slices
                    )
                )
                return answers, server.stats_snapshot()

        answers, stats = run(scenario())
        for part, got in zip(slices, answers):
            assert got == [by_id[req.id] for req in part]
        assert stats["requests"]["answered"] == len(acceptance_stream)
        assert stats["server"]["connections_served"] == 8
        # Batching across connections is the point: windows must coalesce
        # requests from different sockets, not degrade to one per request.
        assert stats["windows"]["max_size"] > 1

    def test_sharded_backend_serves_byte_identically(self, acceptance_stream, expected_lines):
        prefix = acceptance_stream[:60]
        config = ServiceConfig(shards=2, max_wait_ms=10.0, max_batch=32)
        lines, stats = run(serve_stream(requests_to_jsonl(prefix), config))
        assert lines == expected_lines[:60]
        assert stats["server"]["mode"] == "shards=2"


class TestControlLines:
    def test_stats_ping_and_unknown_control_answer_in_order(self):
        request = '{"v":1,"kind":"implies","id":"r1","query":"A = A"}'
        lines = [
            '{"control":"ping"}',
            request,
            '{"control":"stats"}',
            '{"control":"reboot"}',
        ]

        async def scenario():
            async with QueryServer(ServiceConfig(max_wait_ms=5.0)) as server:
                return await _converse(server.host, server.port, lines)

        pong, answer, stats_line, unknown = run(scenario())
        assert json.loads(pong) == {"control": "pong"}
        assert load_result_line(answer).ok
        stats = json.loads(stats_line)
        assert stats["control"] == "stats"
        latency = stats["stats"]["latency_ms"]["total"]
        assert set(latency) >= {"p50", "p95", "p99", "mean", "max", "samples"}
        assert set(stats["stats"]["windows"]) >= {"count", "mean_size", "occupancy", "closed_by"}
        assert stats["stats"]["server"]["window"]["overload"] == "block"
        bad = json.loads(unknown)
        assert bad["error"]["type"] == "ServiceError"
        assert "reboot" in bad["error"]["message"]


class TestErrorResults:
    def test_error_results_echo_parseable_ids_and_fall_back_to_line_numbers(self):
        lines = [
            '{"v":1,"kind":"implies","id":"good","query":"A = A"}',
            '{"kind":"implies","id":"no-query"}',  # valid JSON, invalid request
            "utter garbage",  # not JSON at all
        ]

        async def scenario():
            async with QueryServer(ServiceConfig(max_wait_ms=5.0)) as server:
                return await _converse(server.host, server.port, lines)

        good, bad_request, garbage = (load_result_line(line) for line in run(scenario()))
        assert good.ok and good.id == "good"
        assert not bad_request.ok
        assert bad_request.id == "no-query"  # the id parsed, so it is echoed
        assert not garbage.ok
        assert garbage.id == "line3"  # nothing parsed: the connection line number


class TestDrain:
    def test_drain_answers_admitted_requests_without_waiting_for_the_window_timer(self):
        requests = [
            f'{{"v":1,"kind":"implies","id":"d{i}","query":"A = A * B"}}' for i in range(3)
        ]

        async def scenario():
            # A one-minute window: only drain can close it promptly.
            config = ServiceConfig(max_wait_ms=60_000.0, max_batch=100)
            server = QueryServer(config)
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(("".join(line + "\n" for line in requests)).encode("utf-8"))
            await writer.drain()  # no EOF: the connection stays open
            await _poll(lambda: server.batcher.stats.submitted >= 3)
            started = time.perf_counter()
            await server.drain()
            elapsed = time.perf_counter() - started
            answers = [await reader.readline() for _ in requests]
            trailer = await reader.readline()
            writer.close()
            return answers, trailer, elapsed, server.batcher.stats

        answers, trailer, elapsed, stats = run(scenario(), timeout=30)
        assert elapsed < 30.0  # nowhere near the 60 s window timer
        decoded = [load_result_line(a.decode("utf-8").strip()) for a in answers]
        assert [r.id for r in decoded] == ["d0", "d1", "d2"]
        assert all(r.ok for r in decoded)
        assert trailer == b""  # the server closed the connection after draining
        assert stats.closed_by["drain"] == 1


class GatedSession(Session):
    """A session whose window execution blocks until the test releases it."""

    def __init__(self):
        super().__init__()
        self.gate = threading.Event()

    def execute_many(self, requests):
        self.gate.wait(timeout=30)
        return super().execute_many(requests)


class TestOverloadShed:
    def test_surplus_requests_are_shed_with_well_formed_errors(self):
        requests = [
            f'{{"v":1,"kind":"implies","id":"s{i}","query":"A = A"}}' for i in range(3)
        ]

        async def scenario():
            session = GatedSession()
            config = ServiceConfig(
                max_wait_ms=0.0, max_batch=1, queue_limit=1, overload="shed"
            )
            server = QueryServer(config, session=session)
            host, port = await server.start()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                stats = server.batcher.stats

                # s0 is dequeued into a window that blocks on the gate.
                writer.write((requests[0] + "\n").encode("utf-8"))
                await writer.drain()
                await _poll(lambda: stats.windows >= 1)
                # s1 fills the admission queue (queue_limit=1).
                writer.write((requests[1] + "\n").encode("utf-8"))
                await writer.drain()
                await _poll(lambda: stats.submitted >= 2)
                # s2 finds the queue full and is shed immediately.
                writer.write((requests[2] + "\n").encode("utf-8"))
                await writer.drain()
                await _poll(lambda: stats.shed >= 1)

                session.gate.set()
                writer.write_eof()
                answers = []
                for _ in requests:
                    raw = await reader.readline()
                    assert raw
                    answers.append(load_result_line(raw.decode("utf-8").strip()))
                writer.close()
                return answers, stats
            finally:
                session.gate.set()
                await server.drain()

        answers, stats = run(scenario(), timeout=60)
        assert [r.id for r in answers] == ["s0", "s1", "s2"]  # per-connection order holds
        assert answers[0].ok and answers[1].ok
        shed = answers[2]
        assert not shed.ok
        assert shed.error["type"] == "Overloaded"
        assert "queue full" in shed.error["message"]
        assert stats.shed == 1


class TestServeCommand:
    def test_serve_mode_announces_port_serves_and_drains_on_sigint(self):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve", "--port", "0", "--stats"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
            cwd=str(REPO_ROOT),
        )
        try:
            banner = proc.stderr.readline()
            assert "repro.service serving on " in banner, banner
            address = banner.rsplit(" ", 1)[-1].strip()
            host, port = address.rsplit(":", 1)

            with socket.create_connection((host, int(port)), timeout=30) as conn:
                conn.sendall(
                    b'{"v":1,"kind":"implies","id":"live","query":"A = A * B","dependencies":["A = A * B"]}\n'
                    b'{"control":"ping"}\n'
                )
                stream = conn.makefile("r", encoding="utf-8")
                answer = load_result_line(stream.readline().strip())
                assert answer.ok and answer.id == "live"
                assert answer.value == {"implied": True}
                assert json.loads(stream.readline()) == {"control": "pong"}

            proc.send_signal(signal.SIGINT)
            _, stderr_rest = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "draining" in stderr_rest
        assert "repro.service stats" in stderr_rest
