"""The typed query API: request factories, typed answers, session methods.

The wire layer stays uniform (QueryRequest in, QueryResult out); this suite
pins the typed shim over it — ``session.implies(...)`` & co. accept objects
*or* wire-syntax strings, return frozen answer dataclasses with natural
coercions, carry the session's ``cached`` flag through, and raise
:class:`~repro.errors.QueryFailedError` where a stream would get an
``ok=false`` line.
"""

import pytest

from repro.dependencies.pd import PartitionDependency
from repro.errors import QueryFailedError, ServiceError
from repro.expressions.parser import parse_expression
from repro.service.api import (
    ConsistencyAnswer,
    CounterexampleAnswer,
    EquivalenceAnswer,
    ImplicationAnswer,
    QuotientAnswer,
    answer_for,
    consistent_request,
    counterexample_request,
    equivalent_request,
    implies_request,
    quotient_request,
)
from repro.service.session import Session
from repro.service.wire import QueryResult, decode_database

#: One relation R[A,B] whose rows satisfy the FD A → B.
CONSISTENT_DB = {"relations": [{"name": "R", "attributes": ["A", "B"], "rows": [["a1", "b1"], ["a2", "b2"]]}]}
#: The same scheme with two rows violating A → B.
INCONSISTENT_DB = {"relations": [{"name": "R", "attributes": ["A", "B"], "rows": [["a1", "b1"], ["a1", "b2"]]}]}
#: "A determines B" as a PD (π_A = π_A ∧ π_B).
FD_A_TO_B = "A = A * B"


class TestRequestFactories:
    def test_implies_accepts_pd_objects_strings_and_expression_pairs(self):
        whole = implies_request(PartitionDependency.parse(FD_A_TO_B))
        from_text = implies_request(FD_A_TO_B)
        from_sides = implies_request("A", "A * B")
        assert whole.query == from_text.query == from_sides.query
        assert whole.kind == "implies"
        assert whole.dependencies is None  # defaults to the session's Γ

    def test_factories_coerce_string_dependencies(self):
        request = equivalent_request("A", "B", dependencies=["A = B"], id="e1")
        assert request.id == "e1"
        assert [str(pd) for pd in request.dependencies] == ["A = B"]
        assert request.left == parse_expression("A")

    def test_consistent_accepts_wire_payload_dicts_and_objects(self):
        from_dict = consistent_request(CONSISTENT_DB, dependencies=[FD_A_TO_B])
        from_object = consistent_request(decode_database(CONSISTENT_DB), dependencies=[FD_A_TO_B])
        assert from_dict.database == from_object.database
        assert from_dict.method == "weak_instance"

    def test_quotient_and_counterexample_shapes(self):
        quotient = quotient_request(["A", "B", "A * B"], dependencies=["A = B"])
        assert quotient.kind == "quotient"
        assert len(quotient.pool) == 3
        ce = counterexample_request(FD_A_TO_B, max_pool=50)
        assert ce.kind == "counterexample"
        assert ce.max_pool == 50

    def test_unparseable_inputs_raise_service_errors(self):
        with pytest.raises(ServiceError, match="cannot parse expression"):
            equivalent_request("A + + B", "A")
        with pytest.raises(ServiceError, match="cannot parse dependency"):
            implies_request("A = = B")


class TestSessionMethods:
    def test_implies_both_verdicts_and_bool_coercion(self):
        session = Session(["A = A*B", "B = B*C"])
        positive = session.implies("A = A * C")
        negative = session.implies("C = C * A")
        assert isinstance(positive, ImplicationAnswer)
        assert positive.implied and bool(positive)
        assert not negative.implied and not bool(negative)

    def test_implies_expression_pair_shape(self):
        session = Session(["A = A*B"])
        assert session.implies("A", "A * B")
        assert not session.implies("B", "B * A")

    def test_equivalent_both_verdicts(self):
        session = Session(["A = B"])
        same = session.equivalent("A * C", "B * C")
        different = session.equivalent("A", "C")
        assert isinstance(same, EquivalenceAnswer)
        assert bool(same) and same.equivalent
        assert not bool(different)

    def test_consistent_both_verdicts_with_evidence(self):
        session = Session()
        good = session.consistent(CONSISTENT_DB, dependencies=[FD_A_TO_B])
        bad = session.consistent(INCONSISTENT_DB, dependencies=[FD_A_TO_B])
        assert isinstance(good, ConsistencyAnswer)
        assert good.consistent and bool(good)
        assert good.method == "weak_instance"
        assert good.witness_rows is not None
        assert not bad.consistent and not bool(bad)

    def test_quotient_counts_congruence_classes(self):
        session = Session()
        collapsed = session.quotient(["A", "B", "A * B"], dependencies=["A = B"])
        free = session.quotient(["A", "B"])
        assert isinstance(collapsed, QuotientAnswer)
        assert len(collapsed) == 1  # A ≡ B ≡ A*B under A = B
        assert len(free) == 2
        assert all(isinstance(c, str) for c in free.classes)

    def test_counterexample_both_verdicts(self):
        session = Session(["A = A*B"])
        refuted = session.counterexample("B = B * A")
        held = session.counterexample("A = A * B")
        assert isinstance(refuted, CounterexampleAnswer)
        assert not refuted.implied
        assert refuted.size is not None and refuted.size >= 1
        assert held.implied
        assert held.size is None

    def test_repeat_queries_surface_the_cached_flag(self):
        session = Session(["A = A*B"])
        first = session.implies("A = A * B")
        second = session.implies("A = A * B")
        assert not first.cached
        assert second.cached
        assert first.implied == second.implied

    def test_failed_queries_raise_typed_exceptions(self):
        session = Session()
        # CAD is only defined for FPD-only theories (Theorem 11): a proper
        # sum dependency must be rejected as a per-query failure.
        with pytest.raises(QueryFailedError) as excinfo:
            session.consistent(CONSISTENT_DB, method="cad", dependencies=["A = B + C"])
        assert excinfo.value.kind == "consistent"
        assert excinfo.value.details["type"] == "ConsistencyError"
        assert "functional partition dependency" in str(excinfo.value)


class TestAnswerFor:
    def test_every_kind_maps_to_its_dataclass(self):
        cases = {
            "implies": ({"implied": True}, ImplicationAnswer),
            "fd_implies": ({"implied": False}, ImplicationAnswer),
            "equivalent": ({"equivalent": True}, EquivalenceAnswer),
            "consistent": ({"consistent": True, "method": "weak_instance"}, ConsistencyAnswer),
            "quotient": ({"classes": ["A"], "order": []}, QuotientAnswer),
            "counterexample": ({"implied": True}, CounterexampleAnswer),
        }
        for kind, (value, cls) in cases.items():
            result = QueryResult(kind=kind, ok=True, id="x", value=value, cached=True)
            answer = answer_for(result)
            assert isinstance(answer, cls)
            assert answer.cached

    def test_unknown_kind_is_a_loud_error(self):
        with pytest.raises(ServiceError, match="no typed answer"):
            answer_for(QueryResult(kind="mystery", ok=True, id="x", value={}))

    def test_not_ok_results_raise_with_details(self):
        result = QueryResult(
            kind="implies", ok=False, id="x", error={"type": "Boom", "message": "bad day"}
        )
        with pytest.raises(QueryFailedError, match="bad day"):
            answer_for(result)
