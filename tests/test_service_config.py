"""ServiceConfig: the one validated configuration surface of the query service.

Both CLI modes, the socket server and the factories all consume the same
frozen dataclass, so these tests pin (a) validation of every tunable, (b) the
argparse round-trip for file mode and serve mode, and (c) the session /
executor factories honouring the config.
"""

import argparse

import pytest

from repro.errors import ServiceError
from repro.service.config import (
    OVERLOAD_POLICIES,
    ServiceConfig,
    add_config_arguments,
    config_from_args,
    parse_dependency_text,
)
from repro.service.executor import ShardExecutor
from repro.service.session import Session


class TestValidation:
    def test_defaults_are_valid(self):
        config = ServiceConfig()
        assert config.shards == 1
        assert config.batch
        assert config.overload in OVERLOAD_POLICIES
        assert config.port == 0

    @pytest.mark.parametrize(
        "kwargs,needle",
        [
            ({"shards": 0}, "shards"),
            ({"shards": 2, "batch": False}, "cannot be combined"),
            ({"result_cache_size": -1}, "result_cache_size"),
            ({"foreign_context_limit": 0}, "foreign_context_limit"),
            ({"max_wait_ms": -0.5}, "max_wait_ms"),
            ({"max_batch": 0}, "max_batch"),
            ({"queue_limit": 0}, "queue_limit"),
            ({"overload": "explode"}, "overload"),
            ({"port": 70000}, "port"),
            ({"stats_window": 0}, "stats_window"),
        ],
    )
    def test_invalid_values_are_rejected_with_named_errors(self, kwargs, needle):
        with pytest.raises(ServiceError, match=needle):
            ServiceConfig(**kwargs)

    def test_dependency_text_parsing(self):
        deps = parse_dependency_text("A = A*B; B = B*C")
        assert [str(pd) for pd in deps] == ["A = A * B", "B = B * C"]
        assert parse_dependency_text("") == ()
        assert parse_dependency_text(None) == ()
        with pytest.raises(ServiceError):
            parse_dependency_text("A = = B")

    def test_with_dependencies_returns_a_new_config(self):
        base = ServiceConfig(max_batch=8)
        derived = base.with_dependencies("A = A*B")
        assert base.dependencies == ()
        assert [str(pd) for pd in derived.dependencies] == ["A = A * B"]
        assert derived.max_batch == 8  # other fields carried over


class TestArgparseRoundTrip:
    def _parse(self, argv, serve):
        parser = argparse.ArgumentParser()
        add_config_arguments(parser, serve=serve)
        return config_from_args(parser.parse_args(argv))

    def test_file_mode_flags(self):
        config = self._parse(
            ["-d", "A = A*B", "--shards", "3", "--cache-size", "64", "--stats"], serve=False
        )
        assert [str(pd) for pd in config.dependencies] == ["A = A * B"]
        assert config.shards == 3
        assert config.result_cache_size == 64
        assert config.stats
        assert config.batch  # --no-batch not given
        # Serve-only knobs keep their defaults in file mode.
        assert config.max_wait_ms == ServiceConfig.max_wait_ms
        assert config.overload == ServiceConfig.overload

    def test_file_mode_no_batch(self):
        config = self._parse(["--no-batch"], serve=False)
        assert not config.batch

    def test_serve_mode_flags(self):
        config = self._parse(
            [
                "--host", "0.0.0.0",
                "--port", "4321",
                "--max-wait-ms", "7.5",
                "--max-batch", "16",
                "--queue-limit", "9",
                "--overload", "shed",
            ],
            serve=True,
        )
        assert (config.host, config.port) == ("0.0.0.0", 4321)
        assert config.max_wait_ms == 7.5
        assert config.max_batch == 16
        assert config.queue_limit == 9
        assert config.overload == "shed"
        assert config.batch  # the server always batches

    def test_serve_mode_has_no_no_batch_flag(self):
        parser = argparse.ArgumentParser()
        add_config_arguments(parser, serve=True)
        with pytest.raises(SystemExit):
            parser.parse_args(["--no-batch"])

    def test_bad_dependency_flag_names_the_flag(self):
        parser = argparse.ArgumentParser()
        add_config_arguments(parser, serve=False)
        with pytest.raises(ServiceError, match="cannot parse --dependencies"):
            config_from_args(parser.parse_args(["-d", "A = = B"]))

    def test_invalid_values_surface_as_service_errors(self):
        parser = argparse.ArgumentParser()
        add_config_arguments(parser, serve=True)
        with pytest.raises(ServiceError):
            config_from_args(parser.parse_args(["--queue-limit", "0"]))


class TestFactories:
    def test_make_session_applies_dependencies_and_tuning(self):
        config = ServiceConfig(result_cache_size=7).with_dependencies("A = A*B; B = B*C")
        session = config.make_session()
        assert isinstance(session, Session)
        assert session.implies("A = A * C").implied  # transitively, via the config's Γ

    def test_make_executor_carries_the_shard_count(self):
        config = ServiceConfig(shards=2)
        executor = config.make_executor()
        assert isinstance(executor, ShardExecutor)
        assert executor.shards == 2
