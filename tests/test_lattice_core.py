"""Tests for repro.lattice.core and repro.lattice.properties."""

import pytest

from repro.errors import LatticeError
from repro.lattice.core import FiniteLattice
from repro.lattice.properties import (
    are_isomorphic,
    find_distributivity_violation,
    find_isomorphism,
    is_distributive,
    is_homomorphism,
    is_modular,
)


def diamond_m3() -> FiniteLattice:
    """M3: bottom, three incomparable atoms, top — modular but not distributive."""
    elements = ["bot", "x", "y", "z", "top"]

    def leq(a, b):
        return a == b or a == "bot" or b == "top"

    return FiniteLattice.from_partial_order(elements, leq)


def pentagon_n5() -> FiniteLattice:
    """N5: the pentagon — not modular (and hence not distributive)."""
    elements = ["bot", "a", "b", "c", "top"]
    order = {
        ("bot", "a"), ("bot", "b"), ("bot", "c"), ("bot", "top"),
        ("a", "c"), ("a", "top"), ("b", "top"), ("c", "top"),
    }

    def leq(x, y):
        return x == y or (x, y) in order

    return FiniteLattice.from_partial_order(elements, leq)


class TestConstruction:
    def test_chain_and_boolean(self):
        chain = FiniteLattice.chain(4)
        assert chain.bottom() == 0 and chain.top() == 3
        boolean = FiniteLattice.boolean("AB")
        assert len(boolean) == 4
        assert boolean.evaluate("A * B") == frozenset()
        assert boolean.evaluate("A + B") == frozenset({"A", "B"})

    def test_axiom_validation_rejects_non_lattice(self):
        with pytest.raises(LatticeError):
            FiniteLattice([0, 1], meet=lambda x, y: x, join=lambda x, y: y)

    def test_from_partial_order_requires_bounds(self):
        # Two incomparable elements with no common upper bound.
        with pytest.raises(LatticeError):
            FiniteLattice.from_partial_order(["a", "b"], lambda x, y: x == y)

    def test_from_tables(self):
        elements = [0, 1]
        meet = {(0, 0): 0, (0, 1): 0, (1, 1): 1}
        join = {(0, 0): 0, (0, 1): 1, (1, 1): 1}
        lattice = FiniteLattice.from_tables(elements, meet, join)
        assert lattice.leq(0, 1)

    def test_empty_lattice_rejected(self):
        with pytest.raises(LatticeError):
            FiniteLattice([], min, max)

    def test_meet_join_of_unknown_element(self):
        chain = FiniteLattice.chain(2)
        with pytest.raises(LatticeError):
            chain.meet(0, 7)


class TestOrderAndStructure:
    def test_leq_and_covers(self):
        chain = FiniteLattice.chain(3)
        assert chain.leq(0, 2)
        assert set(chain.covers()) == {(0, 1), (1, 2)}

    def test_m3_is_modular_not_distributive(self):
        m3 = diamond_m3()
        assert is_modular(m3)
        assert not is_distributive(m3)
        assert find_distributivity_violation(m3) is not None

    def test_n5_is_not_modular(self):
        n5 = pentagon_n5()
        assert not is_modular(n5)
        assert not is_distributive(n5)

    def test_boolean_lattice_is_distributive(self):
        assert is_distributive(FiniteLattice.boolean("ABC"))

    def test_sublattice_generated(self):
        boolean = FiniteLattice.boolean("ABC")
        sub = boolean.sublattice([frozenset({"A"}), frozenset({"B"})])
        assert len(sub) == 4
        assert frozenset() in sub and frozenset({"A", "B"}) in sub


class TestConstantsAndEvaluation:
    def test_constants_and_satisfies(self):
        boolean = FiniteLattice.boolean("AB")
        assert boolean.satisfies("A * (A + B) = A")
        assert not boolean.satisfies("A = B")
        assert boolean.satisfies_all(["A + A = A", "A*B = B*A"])

    def test_missing_constant(self):
        boolean = FiniteLattice.boolean("AB")
        with pytest.raises(LatticeError):
            boolean.evaluate("Z")

    def test_with_constants_renames(self):
        boolean = FiniteLattice.boolean("AB")
        renamed = boolean.with_constants({"X": frozenset({"A"}), "Y": frozenset({"A"})})
        # Two names for the same element are allowed (§2.2).
        assert renamed.satisfies("X = Y")


class TestMorphisms:
    def test_identity_is_homomorphism(self):
        m3 = diamond_m3()
        assert is_homomorphism(m3, m3, {e: e for e in m3.elements})

    def test_collapse_homomorphism(self):
        chain = FiniteLattice.chain(3)
        target = FiniteLattice.chain(2)
        assert is_homomorphism(chain, target, {0: 0, 1: 1, 2: 1})
        assert not is_homomorphism(chain, target, {0: 1, 1: 0, 2: 1})

    def test_isomorphism_detection(self):
        assert are_isomorphic(diamond_m3(), diamond_m3())
        assert not are_isomorphic(diamond_m3(), pentagon_n5())
        assert not are_isomorphic(FiniteLattice.chain(3), FiniteLattice.chain(4))
        mapping = find_isomorphism(FiniteLattice.chain(3), FiniteLattice.chain(3))
        assert mapping == {0: 0, 1: 1, 2: 2}

    def test_boolean_lattices_isomorphic_regardless_of_generator_names(self):
        assert are_isomorphic(FiniteLattice.boolean("AB"), FiniteLattice.boolean("XY"))
