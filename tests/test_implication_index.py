"""The incremental ImplicationIndex against the from-scratch ALG oracles.

The load-bearing property: no matter how ``(E, V)`` is grown — batch
construction, expression-by-expression, dependency-by-dependency, arbitrary
interleavings — the arc relation equals the one :func:`alg_closure` (and on
smaller inputs :func:`alg_closure_naive`) computes from scratch over the
same final input.
"""

import random

from repro.dependencies.pd import PartitionDependency
from repro.implication.alg import (
    ImplicationEngine,
    alg_closure,
    alg_closure_naive,
    pd_equivalent,
)
from repro.implication.index import ImplicationIndex, implication_index
from repro.workloads.random_dependencies import random_pd_set
from repro.workloads.random_expressions import random_expression
from repro.workloads.random_implication import random_implication_workload

UNIVERSE = ["A", "B", "C"]


def _assert_classes_maximal(index):
    """No two distinct congruence classes may have arcs both ways.

    ``as_expression_pairs`` alone cannot see this (the arcs survive a missed
    collapse), so every randomized cross-check also pins the class level.
    """
    representatives = [members[0] for members in index.congruence_classes()]
    for i, left in enumerate(representatives):
        for right in representatives[i + 1 :]:
            assert not (index.has_arc(left, right) and index.has_arc(right, left)), (
                f"{left} and {right} are mutually reachable but in distinct classes"
            )
            assert index.equivalent(left, right) == (
                index.leq(left, right) and index.leq(right, left)
            )


def _random_case(rng, max_pds=4, max_complexity=3, max_extra=3):
    pds = random_pd_set(
        len(UNIVERSE), rng.randint(1, max_pds), seed=rng.randint(0, 10**6), max_complexity=max_complexity
    )
    extra = [
        random_expression(UNIVERSE, rng.randint(0, 10**6), max_complexity)
        for _ in range(rng.randint(0, max_extra))
    ]
    return pds, extra


class TestOracleAgreement:
    def test_batch_matches_worklist_oracle(self):
        rng = random.Random(101)
        for trial in range(30):
            pds, extra = _random_case(rng)
            index = ImplicationIndex(pds, extra)
            oracle = alg_closure(pds, extra)
            assert index.as_expression_pairs() == oracle.as_expression_pairs(), trial
            _assert_classes_maximal(index)

    def test_interleaved_growth_matches_worklist_oracle(self):
        rng = random.Random(202)
        for trial in range(30):
            pds, extra = _random_case(rng)
            steps = [("dependency", pd) for pd in pds] + [("expression", e) for e in extra]
            rng.shuffle(steps)
            index = ImplicationIndex()
            for kind, payload in steps:
                if kind == "dependency":
                    index.add_dependencies([payload])
                else:
                    index.add_expressions([payload])
            oracle = alg_closure(pds, extra)
            assert index.as_expression_pairs() == oracle.as_expression_pairs(), trial
            _assert_classes_maximal(index)

    def test_interleaved_growth_matches_naive_oracle(self):
        rng = random.Random(303)
        for trial in range(10):
            pds, extra = _random_case(rng, max_pds=3, max_complexity=2, max_extra=2)
            index = ImplicationIndex()
            for pd in pds:
                index.add_dependencies([pd])
            index.add_expressions(extra)
            oracle = alg_closure_naive(pds, extra)
            assert index.as_expression_pairs() == oracle.as_expression_pairs(), trial

    def test_query_order_does_not_change_answers(self):
        # Two indexes over the same theory, fed the same queries in opposite
        # orders, must agree on every verdict (the closure is monotone).
        theory, queries = random_implication_workload(4, 6, 20, seed=404)
        forward = ImplicationIndex(theory)
        backward = ImplicationIndex(theory)
        forward_answers = [
            forward.leq(q.left, q.right) and forward.leq(q.right, q.left) for q in queries
        ]
        backward_answers = [
            backward.leq(q.left, q.right) and backward.leq(q.right, q.left)
            for q in reversed(queries)
        ]
        assert forward_answers == backward_answers[::-1]

    def test_incremental_engine_matches_naive_engine(self):
        rng = random.Random(505)
        for trial in range(10):
            pds, _ = _random_case(rng, max_pds=3, max_complexity=2)
            queries = [
                PartitionDependency(
                    random_expression(UNIVERSE, rng.randint(0, 10**6), 2),
                    random_expression(UNIVERSE, rng.randint(0, 10**6), 2),
                )
                for _ in range(5)
            ]
            fast = ImplicationEngine(pds)
            slow = ImplicationEngine(pds, naive=True)
            for query in queries:
                assert fast.implies(query) == slow.implies(query), (trial, str(query))


class TestCongruenceClasses:
    def test_equation_merges_classes(self):
        index = ImplicationIndex(["A = B"])
        assert index.equivalent("A", "B")
        assert index.representative("A") is index.representative("B")

    def test_chain_of_equalities_collapses_to_one_class(self):
        chain = [f"X{i} = X{i + 1}" for i in range(10)]
        index = ImplicationIndex(chain)
        first = index.representative("X0")
        for i in range(11):
            assert index.representative(f"X{i}") is first
        # 11 attribute vertices in a single class.
        assert index.vertex_count == 11
        assert index.class_count == 1

    def test_merge_rename_completing_mutual_pair_still_collapses(self):
        # Regression: merging L and W renames the pre-existing arcs A -> L and
        # W -> A into a mutual A <-> {L,W} pair without any _insert call; the
        # merge itself must detect it and collapse A into the class.
        index = ImplicationIndex(["A = A*L", "W = W*A", "L = W"])
        assert index.leq("A", "L") and index.leq("L", "A")
        assert index.equivalent("A", "L")
        assert index.equivalent("A", "W")
        _assert_classes_maximal(index)

    def test_derived_equivalence_is_collapsed(self):
        # A*B =_E B*A is forced by commutativity inside ALG's rules once both
        # expressions are vertices, with no explicit equation.
        index = ImplicationIndex([], ["A*B", "B*A"])
        assert index.equivalent("A*B", "B*A")
        assert not index.equivalent("A", "B")

    def test_collapse_keeps_successor_sets_small(self):
        chain = [f"X{i} = X{i + 1}" for i in range(20)]
        index = ImplicationIndex(chain)
        # One class with a single self-arc instead of 21² expression pairs.
        assert index.arc_count() == 1
        assert len(index.as_expression_pairs()) == 21 * 21

    def test_congruence_classes_partition_the_vertices(self):
        theory, queries = random_implication_workload(3, 4, 6, seed=606, max_complexity=2)
        index = ImplicationIndex(theory, [q.left for q in queries])
        classes = index.congruence_classes()
        seen = [expr for members in classes for expr in members]
        assert len(seen) == index.vertex_count
        assert len(set(seen)) == index.vertex_count


class TestServiceSurface:
    def test_knows_and_has_arc_do_not_mutate(self):
        index = ImplicationIndex(["A = A*B"])
        count = index.vertex_count
        assert index.knows("A") and index.knows("A*B")
        assert not index.knows("C")
        assert index.has_arc("A", "B")
        assert index.vertex_count == count

    def test_has_arc_requires_registered_expressions(self):
        index = ImplicationIndex(["A = A*B"])
        try:
            index.has_arc("A", "C")
        except KeyError:
            pass
        else:  # pragma: no cover - defends the read-only contract
            raise AssertionError("has_arc must not register new expressions")

    def test_engine_add_dependencies_resumes(self):
        engine = ImplicationEngine(["A = A*B"])
        assert not engine.leq("A", "C")
        engine.add_dependencies(["B = B*C"])
        assert engine.leq("A", "C")
        assert engine.dependencies == [
            PartitionDependency.parse("A = A*B"),
            PartitionDependency.parse("B = B*C"),
        ]

    def test_naive_engine_add_dependencies_recomputes(self):
        engine = ImplicationEngine(["A = A*B"], naive=True)
        assert not engine.leq("A", "C")
        engine.add_dependencies(["B = B*C"])
        assert engine.leq("A", "C")

    def test_convenience_constructor(self):
        index = implication_index(["A = A*B"], ["C"])
        assert index.has_arc("A", "B")
        assert index.knows("C")

    def test_quotient_fragment_rejects_mismatched_engine(self):
        from repro.errors import LatticeError
        from repro.expressions.ast import attrs
        from repro.lattice.quotient import quotient_fragment

        a, b = attrs("A", "B")
        wrong_engine = ImplicationEngine(["A = B"])
        try:
            quotient_fragment(["A = A*B"], [a, b], engine=wrong_engine)
        except LatticeError:
            pass
        else:  # pragma: no cover - defends the shared-engine contract
            raise AssertionError("a shared engine over a different PD set must be rejected")

    def test_pd_equivalent_one_engine_per_direction(self):
        first = ["C = A + B"]
        second = ["C = C*(A+B)", "A = A*C", "B = B*C"]
        assert pd_equivalent(first, second)
        assert pd_equivalent(first, second, naive=True)
        assert not pd_equivalent(first, ["A = B"])
