"""Tests for repro.implication.identities (≤_id, Theorem 10) and the free lattice fragment."""

from hypothesis import given, settings

from repro.dependencies.pd import lattice_axiom_instances
from repro.implication.identities import (
    identically_equal,
    identically_leq,
    identically_leq_iterative,
    is_pd_identity,
)
from repro.lattice.free_lattice import (
    bounded_expressions,
    free_lattice_fragment,
    free_lattice_size_on_two_generators,
    whitman_condition_holds,
)

from tests.conftest import expressions


class TestIdenticallyLeq:
    def test_reflexivity_on_attributes(self):
        assert identically_leq("A", "A")
        assert not identically_leq("A", "B")

    def test_meet_below_join_above(self):
        assert identically_leq("A * B", "A")
        assert identically_leq("A", "A + B")
        assert identically_leq("A * B", "A + B")
        assert not identically_leq("A", "A * B")
        assert not identically_leq("A + B", "A")

    def test_absorption_identities(self):
        assert identically_equal("A * (A + B)", "A")
        assert identically_equal("A + (A * B)", "A")

    def test_associativity_commutativity_idempotence(self):
        assert identically_equal("(A*B)*C", "A*(B*C)")
        assert identically_equal("A*B", "B*A")
        assert identically_equal("A+A", "A")

    def test_distributivity_is_not_an_identity(self):
        # Only one direction of the distributive law holds in all lattices.
        assert identically_leq("(A*B) + (A*C)", "A * (B + C)")
        assert not identically_leq("A * (B + C)", "(A*B) + (A*C)")
        assert not identically_equal("A * (B + C)", "(A*B) + (A*C)")

    def test_modular_inequality(self):
        # (A*C) + (B*C) <= (A + B) * C holds in every lattice.
        assert identically_leq("(A*C) + (B*C)", "(A + B) * C")

    def test_all_lattice_axioms_are_identities(self):
        for pd in lattice_axiom_instances("A * B", "C", "A + D"):
            assert is_pd_identity(pd)

    def test_theorem4_equivalences(self):
        # A + B = (A+B)·C is equivalent to A = A·C and B = B·C -- here we check
        # the two halves that are pure identities given the FPDs, at the
        # identity level only the trivial directions hold.
        assert identically_leq("A", "A + B")
        assert identically_leq("B", "A + B")

    @given(expressions(), expressions())
    @settings(max_examples=80, deadline=None)
    def test_iterative_agrees_with_memoized(self, left, right):
        assert identically_leq(left, right) == identically_leq_iterative(left, right)

    @given(expressions())
    @settings(max_examples=60, deadline=None)
    def test_reflexive_property(self, expression):
        assert identically_leq(expression, expression)

    @given(expressions(), expressions(), expressions())
    @settings(max_examples=60, deadline=None)
    def test_transitivity_property(self, x, y, z):
        if identically_leq(x, y) and identically_leq(y, z):
            assert identically_leq(x, z)

    @given(expressions(), expressions())
    @settings(max_examples=60, deadline=None)
    def test_meet_is_lower_bound_join_is_upper_bound(self, x, y):
        assert identically_leq(x * y, x) and identically_leq(x * y, y)
        assert identically_leq(x, x + y) and identically_leq(y, x + y)


class TestFreeLatticeFragment:
    def test_two_generator_free_lattice_has_four_elements(self):
        fragment = free_lattice_fragment(["A", "B"], max_complexity=2)
        assert len(fragment) == free_lattice_size_on_two_generators() == 4

    def test_three_generators_fragment_grows(self):
        small = free_lattice_fragment(["A", "B", "C"], max_complexity=1)
        assert len(small) == 3 + 3 + 3  # attributes + pairwise meets + pairwise joins

    def test_class_of_finds_representative(self):
        fragment = free_lattice_fragment(["A", "B"], max_complexity=2)
        representative = fragment.class_of(
            bounded_expressions(["A", "B"], 2)[-1]
        )
        assert any(identically_equal(representative, r) for r in fragment.representatives)

    def test_whitman_condition(self):
        from repro.expressions.parser import parse_expression

        assert whitman_condition_holds(parse_expression("A*B"), parse_expression("A+C"))
        assert not whitman_condition_holds(parse_expression("A*B"), parse_expression("C+D"))
