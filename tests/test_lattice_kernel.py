"""Randomized equivalence suite: bitset lattice kernel vs the preserved oracles.

The PR 1–3 pattern: the production path (integer/bitset ``FiniteLattice``,
class-driven quotient pipeline, globally memoized ``≤_id``) must agree with
the preserved seed implementations (:mod:`repro.lattice.oracle`,
``identically_leq_cold``/``identically_leq_iterative``) on randomized
workloads — identical lattices, identical ``L_H`` up to isomorphism,
identical ``≤_id`` verdicts.
"""

import random

import pytest

from repro.errors import LatticeError
from repro.implication.alg import ImplicationEngine
from repro.implication.identities import (
    clear_identity_cache,
    identically_leq,
    identically_leq_cold,
    identically_leq_iterative,
    identity_cache_info,
)
from repro.lattice.core import FiniteLattice
from repro.lattice.free_lattice import bounded_expressions
from repro.lattice.oracle import (
    OracleFiniteLattice,
    finite_counterexample_oracle,
    oracle_is_distributive,
    oracle_is_modular,
    quotient_fragment_pairwise,
)
from repro.lattice.partition_lattice import set_partitions
from repro.lattice.properties import are_isomorphic, is_distributive, is_modular
from repro.lattice.quotient import finite_counterexample, quotient_fragment
from repro.workloads.random_dependencies import random_pd_set
from repro.workloads.random_expressions import random_expression

SEEDS = range(8)


def random_partition_sublattice_elements(seed: int, n: int = 4) -> list:
    """Elements of a random sublattice of Π_n (closure computed by the oracle)."""
    rng = random.Random(seed)
    pool = list(set_partitions(range(n)))
    oracle_full = OracleFiniteLattice(
        pool, lambda x, y: x.product(y), lambda x, y: x.sum(y), validate=False
    )
    generators = rng.sample(pool, rng.randint(2, 5))
    return oracle_full.sublattice(generators).elements


def build_pair(elements, meet, join, constants=None, validate=True):
    """The same lattice on the kernel and on the dict-table oracle."""
    kernel = FiniteLattice(elements, meet, join, constants, validate=validate)
    oracle = OracleFiniteLattice(elements, meet, join, constants, validate=validate)
    return kernel, oracle


def assert_equivalent(kernel: FiniteLattice, oracle: OracleFiniteLattice) -> None:
    """Every public observation of the two lattices must coincide."""
    assert kernel.elements == oracle.elements
    assert kernel.constants == oracle.constants
    for x in kernel.elements:
        for y in kernel.elements:
            assert kernel.meet(x, y) == oracle.meet(x, y)
            assert kernel.join(x, y) == oracle.join(x, y)
            assert kernel.leq(x, y) == oracle.leq(x, y)
    assert kernel.top() == oracle.top()
    assert kernel.bottom() == oracle.bottom()
    assert kernel.covers() == oracle.covers()
    assert (kernel.axiom_violations() == []) == (oracle.axiom_violations() == [])


class TestKernelMatchesOracle:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_partition_sublattices(self, seed):
        elements = random_partition_sublattice_elements(seed)
        kernel, oracle = build_pair(
            elements, lambda x, y: x.product(y), lambda x, y: x.sum(y)
        )
        assert_equivalent(kernel, oracle)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sublattice_closure_agrees(self, seed):
        rng = random.Random(seed + 1000)
        elements = random_partition_sublattice_elements(seed)
        kernel, oracle = build_pair(
            elements, lambda x, y: x.product(y), lambda x, y: x.sum(y)
        )
        generators = rng.sample(elements, rng.randint(1, min(3, len(elements))))
        kernel_sub = kernel.sublattice(generators)
        oracle_sub = oracle.sublattice(generators)
        assert kernel_sub.elements == oracle_sub.elements
        assert_equivalent(kernel_sub, OracleFiniteLattice(
            oracle_sub.elements, oracle.meet, oracle.join, validate=False
        ))

    def test_boolean_and_chain_families(self):
        assert_equivalent(FiniteLattice.boolean("ABC"), OracleFiniteLattice.boolean("ABC"))
        assert_equivalent(FiniteLattice.chain(7), OracleFiniteLattice.chain(7))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_from_partial_order_agrees(self, seed):
        elements = random_partition_sublattice_elements(seed)
        kernel = FiniteLattice.from_partial_order(elements, lambda x, y: x.refines(y))
        oracle = OracleFiniteLattice.from_partial_order(elements, lambda x, y: x.refines(y))
        assert_equivalent(kernel, oracle)

    def test_from_partial_order_rejects_non_lattice_orders(self):
        # Two incomparable elements with no common bound.
        for cls in (FiniteLattice, OracleFiniteLattice):
            with pytest.raises(LatticeError):
                cls.from_partial_order(["a", "b"], lambda x, y: x == y)
        # A preorder that is not antisymmetric.
        for cls in (FiniteLattice, OracleFiniteLattice):
            with pytest.raises(LatticeError):
                cls.from_partial_order(["a", "b"], lambda x, y: True)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_corrupted_tables_detected_identically(self, seed):
        rng = random.Random(seed + 2000)
        elements = random_partition_sublattice_elements(seed)
        if len(elements) < 3:
            pytest.skip("too small to corrupt interestingly")
        kernel = FiniteLattice(
            elements, lambda x, y: x.product(y), lambda x, y: x.sum(y), validate=False
        )
        meet_table = {
            (x, y): kernel.meet(x, y) for x in elements for y in elements
        }
        join_table = {
            (x, y): kernel.join(x, y) for x in elements for y in elements
        }
        # Corrupt one symmetric meet pair to a different element.
        x, y = rng.sample(elements, 2)
        wrong = rng.choice([e for e in elements if e != meet_table[(x, y)]])
        meet_table[(x, y)] = meet_table[(y, x)] = wrong
        corrupted_kernel = FiniteLattice.from_tables(
            elements, meet_table, join_table, validate=False
        )
        corrupted_oracle = OracleFiniteLattice.from_tables(
            elements, meet_table, join_table, validate=False
        )
        assert bool(corrupted_kernel.axiom_violations()) == bool(
            corrupted_oracle.axiom_violations()
        )
        assert corrupted_kernel.axiom_violations()  # the corruption is real

    @pytest.mark.parametrize("seed", SEEDS)
    def test_evaluate_and_satisfies_agree(self, seed):
        rng = random.Random(seed + 3000)
        kernel, oracle = (FiniteLattice.boolean("ABCD"), OracleFiniteLattice.boolean("ABCD"))
        for _ in range(25):
            expression = random_expression(list("ABCD"), rng, max_complexity=4)
            assert kernel.evaluate(expression) == oracle.evaluate(expression)
        for pd in random_pd_set(4, 10, seed=seed, max_complexity=3):
            assert kernel.satisfies(pd) == oracle.satisfies(pd)
        with pytest.raises(LatticeError):
            kernel.evaluate("Z")
        with pytest.raises(LatticeError):
            oracle.evaluate("Z")

    @pytest.mark.parametrize("seed", SEEDS)
    def test_property_checks_agree(self, seed):
        elements = random_partition_sublattice_elements(seed)
        kernel, oracle = build_pair(
            elements, lambda x, y: x.product(y), lambda x, y: x.sum(y), validate=False
        )
        assert is_modular(kernel) == oracle_is_modular(oracle)
        assert is_distributive(kernel) == oracle_is_distributive(oracle)


class TestQuotientPipelineMatchesOracle:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_quotient_fragment_matches_pairwise(self, seed):
        rng = random.Random(seed + 4000)
        pds = random_pd_set(3, rng.randint(0, 3), seed=seed, max_complexity=2)
        pool = bounded_expressions(["A", "B", "C"], 2)
        pool = rng.sample(pool, rng.randint(10, min(80, len(pool))))
        fast = quotient_fragment(pds, pool)
        slow = quotient_fragment_pairwise(pds, pool)
        assert fast.representatives == slow.representatives
        assert fast.order == slow.order

    @pytest.mark.parametrize("seed", SEEDS)
    def test_index_of_matches_pairwise_scan(self, seed):
        rng = random.Random(seed + 5000)
        pds = random_pd_set(3, rng.randint(0, 2), seed=seed, max_complexity=1)
        pool = bounded_expressions(["A", "B", "C"], 1)
        fragment = quotient_fragment(pds, pool)
        probe_engine = ImplicationEngine(pds, query_expressions=fragment.representatives)
        for _ in range(20):
            expression = random_expression(list("ABC"), rng, max_complexity=2)
            assert fragment.index_of(expression) == fragment.index_of(
                expression, engine=probe_engine
            )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_finite_counterexample_matches_oracle(self, seed):
        rng = random.Random(seed + 6000)
        pds = random_pd_set(3, rng.randint(0, 2), seed=seed, max_complexity=1)
        # One seed exercises a complexity-2 pool (237 expressions — the
        # oracle's quadratic path makes larger cross-checks too slow here;
        # EXP-LAT benchmarks the gap instead).
        query = random_pd_set(3, 1, seed=seed + 77, max_complexity=2 if seed == 0 else 1)[0]
        kernel_lattice = finite_counterexample(pds, query)
        oracle_lattice = finite_counterexample_oracle(pds, query)
        assert (kernel_lattice is None) == (oracle_lattice is None)
        if kernel_lattice is None:
            return
        assert len(kernel_lattice) == len(oracle_lattice)
        assert kernel_lattice.satisfies_all(pds)
        assert not kernel_lattice.satisfies(query)
        assert oracle_lattice.satisfies_all(pds)
        assert not oracle_lattice.satisfies(query)
        assert are_isomorphic(kernel_lattice, oracle_lattice)


class TestIdentityMemoMatchesOracles:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_leq_verdicts_agree(self, seed):
        rng = random.Random(seed + 7000)
        for _ in range(30):
            left = random_expression(list("ABC"), rng, max_complexity=3)
            right = random_expression(list("ABC"), rng, max_complexity=3)
            verdict = identically_leq(left, right)
            assert verdict == identically_leq_cold(left, right)
            assert verdict == identically_leq_iterative(left, right)

    def test_cache_grows_and_clears(self):
        clear_identity_cache()
        base = identity_cache_info()
        assert base["pairs"] == 0
        left = random_expression(list("AB"), random.Random(1), max_complexity=3)
        right = random_expression(list("AB"), random.Random(2), max_complexity=3)
        identically_leq(left, right)
        warm = identity_cache_info()
        assert warm["pairs"] > 0 and warm["misses"] > 0
        # A repeated query is answered from the shared table.
        identically_leq(left, right)
        assert identity_cache_info()["hits"] > warm["hits"]
        clear_identity_cache()
        assert identity_cache_info() == {"pairs": 0, "hits": 0, "misses": 0}
