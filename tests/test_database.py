"""Tests for repro.relational.database."""

import pytest

from repro.errors import SchemaError
from repro.relational.attributes import AttributeSet
from repro.relational.database import Database
from repro.relational.relations import Relation


@pytest.fixture
def database() -> Database:
    return Database(
        [
            Relation.from_strings("R", "AB", ["a1.b1", "a2.b2"]),
            Relation.from_strings("S", "BC", ["b1.c1"]),
        ]
    )


class TestDatabase:
    def test_universe(self, database):
        assert database.universe == AttributeSet("ABC")

    def test_duplicate_relation_names_rejected(self):
        with pytest.raises(SchemaError):
            Database(
                [Relation.from_strings("R", "AB", ["a.b"]), Relation.from_strings("R", "BC", ["b.c"])]
            )

    def test_empty_database_rejected(self):
        with pytest.raises(SchemaError):
            Database([])

    def test_lookup(self, database):
        assert database.relation("R").name == "R"
        with pytest.raises(SchemaError):
            database.relation("T")

    def test_symbols_under_unions_columns(self, database):
        assert database.symbols_under("B") == {"b1", "b2"}
        assert database.symbols_under("A") == {"a1", "a2"}
        assert database.symbols_under("Z") == frozenset()

    def test_active_domain_and_total_tuples(self, database):
        assert database.total_tuples() == 3
        assert "c1" in database.active_domain()

    def test_single_constructor(self):
        relation = Relation.from_strings("R", "A", ["a"])
        assert len(Database.single(relation)) == 1

    def test_with_relation_replaces_by_name(self, database):
        replacement = Relation.from_strings("R", "AB", ["a9.b9"])
        updated = database.with_relation(replacement)
        assert updated.relation("R").column("A") == {"a9"}
        assert database.relation("R").column("A") == {"a1", "a2"}  # original untouched

    def test_iteration_sorted_by_name(self, database):
        assert [relation.name for relation in database] == ["R", "S"]

    def test_equality(self, database):
        same = Database(
            [
                Relation.from_strings("R", "AB", ["a1.b1", "a2.b2"]),
                Relation.from_strings("S", "BC", ["b1.c1"]),
            ]
        )
        assert database == same
