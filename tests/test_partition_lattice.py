"""Tests for repro.lattice.partition_lattice and interpretation_lattice."""

import pytest

from repro.errors import LatticeError
from repro.lattice.interpretation_lattice import InterpretationLattice
from repro.lattice.partition_lattice import (
    bell_number,
    is_sublattice_of_partition_lattice,
    partition_lattice,
    set_partitions,
)
from repro.lattice.properties import is_distributive
from repro.partitions.canonical import canonical_interpretation
from repro.partitions.interpretation import PartitionInterpretation
from repro.partitions.partition import Partition
from repro.relational.relations import Relation


class TestSetPartitions:
    def test_counts_match_bell_numbers(self):
        for n in range(0, 6):
            assert len(list(set_partitions(list(range(n))))) == bell_number(n)

    def test_bell_numbers(self):
        assert [bell_number(n) for n in range(7)] == [1, 1, 2, 5, 15, 52, 203]
        with pytest.raises(LatticeError):
            bell_number(-1)

    def test_all_results_are_partitions_of_the_population(self):
        population = [1, 2, 3, 4]
        for partition in set_partitions(population):
            assert partition.population == set(population)


class TestPartitionLattice:
    def test_top_and_bottom(self):
        lattice = partition_lattice([1, 2, 3])
        assert lattice.top() == Partition.indiscrete([1, 2, 3])
        assert lattice.bottom() == Partition.discrete([1, 2, 3])

    def test_partition_lattice_of_3_is_not_distributive(self):
        # The partition lattice of a 3-element set contains M3.
        assert not is_distributive(partition_lattice([1, 2, 3]))

    def test_meet_join_are_product_sum(self):
        lattice = partition_lattice([1, 2, 3])
        x = Partition([{1, 2}, {3}])
        y = Partition([{1, 3}, {2}])
        assert lattice.meet(x, y) == x * y
        assert lattice.join(x, y) == x + y

    def test_sublattice_check(self):
        x = Partition([{1, 2}, {3}])
        y = Partition([{1, 3}, {2}])
        assert not is_sublattice_of_partition_lattice([x, y])
        closed = [x, y, x * y, x + y]
        assert is_sublattice_of_partition_lattice(closed)

    def test_sublattice_check_requires_common_population(self):
        with pytest.raises(LatticeError):
            is_sublattice_of_partition_lattice([Partition([{1}]), Partition([{2}])])


class TestInterpretationLattice:
    def test_figure1_lattice_is_not_distributive(self):
        interpretation = PartitionInterpretation.from_named_blocks(
            {
                "A": {"a": {1}, "a1": {4}, "a2": {2, 3}},
                "B": {"b": {1, 4}, "b1": {2, 3}},
                "C": {"c": {1, 2}, "c1": {3, 4}},
            }
        )
        lattice = InterpretationLattice.from_interpretation(interpretation)
        assert not lattice.is_distributive()
        assert lattice.find_distributivity_violation() is not None
        # The specific witness from Figure 1.
        assert lattice.evaluate("B * (A + C)") != lattice.evaluate("(B*A) + (B*C)")

    def test_theorem1_lattice_satisfaction_equals_interpretation_satisfaction(self):
        interpretation = PartitionInterpretation.from_named_blocks(
            {
                "A": {"a": {1}, "a1": {4}, "a2": {2, 3}},
                "B": {"b": {1, 4}, "b1": {2, 3}},
                "C": {"c": {1, 2}, "c1": {3, 4}},
            }
        )
        lattice = InterpretationLattice.from_interpretation(interpretation)
        for pd in ["A = A*B", "B = B*A", "C = A + B", "A + B = B + A", "A = A*C"]:
            assert lattice.satisfies(pd) == interpretation.satisfies_pd(pd), pd

    def test_from_relation_closure_is_closed(self):
        relation = Relation.from_strings("r", "ABC", ["a.b1.c1", "a.b2.c2", "a2.b1.c2"])
        lattice = InterpretationLattice.from_relation(relation)
        elements = set(lattice.elements)
        for x in elements:
            for y in elements:
                assert x * y in elements and x + y in elements

    def test_interpretation_lattice_on_common_population_embeds_in_partition_lattice(self):
        relation = Relation.from_strings("r", "AB", ["a.b1", "a.b2", "a2.b1"])
        lattice = InterpretationLattice.from_relation(relation)
        assert is_sublattice_of_partition_lattice(lattice.elements)

    def test_generators_named_by_attributes(self):
        relation = Relation.from_strings("r", "AB", ["a.b", "a2.b"])
        lattice = InterpretationLattice.from_relation(relation)
        assert set(lattice.generators) == {"A", "B"}
        assert lattice.evaluate("A") == canonical_interpretation(relation).meaning("A")

    def test_empty_generator_set_rejected(self):
        with pytest.raises(LatticeError):
            InterpretationLattice({})

    def test_isomorphism_between_lattices(self):
        r1 = Relation.from_strings("r1", "ABC", ["a.b1.c1", "a.b1.c2", "a.b2.c1", "a.b2.c2"])
        r2 = Relation.from_strings("r2", "ABC", ["a.b1.c1", "a.b2.c2", "a.b1.c2"])
        assert InterpretationLattice.from_relation(r1).isomorphic_to(
            InterpretationLattice.from_relation(r2)
        )
