"""Tests for repro.partitions.assumptions (CAD and EAP, Definition 4)."""

from repro.partitions.assumptions import cad_violations, satisfies_cad, satisfies_eap
from repro.partitions.canonical import canonical_interpretation
from repro.partitions.interpretation import PartitionInterpretation
from repro.relational.database import Database
from repro.relational.relations import Relation


class TestEap:
    def test_equal_populations(self):
        interpretation = PartitionInterpretation.from_named_blocks(
            {"A": {"a": {1, 2}}, "B": {"b1": {1}, "b2": {2}}}
        )
        assert satisfies_eap(interpretation)

    def test_unequal_populations(self):
        interpretation = PartitionInterpretation.from_named_blocks(
            {"A": {"a": {1}}, "B": {"b": {1, 2}}}
        )
        assert not satisfies_eap(interpretation)

    def test_canonical_interpretation_always_eap(self):
        relation = Relation.from_strings("r", "AB", ["a.b", "a2.b2"])
        assert satisfies_eap(canonical_interpretation(relation))


class TestCad:
    def test_cad_holds_when_named_symbols_match_database(self):
        relation = Relation.from_strings("r", "AB", ["a1.b1", "a2.b1"])
        database = Database.single(relation)
        interpretation = canonical_interpretation(relation)
        assert satisfies_cad(interpretation, database)

    def test_cad_fails_with_extra_named_symbol(self):
        relation = Relation.from_strings("r", "AB", ["a1.b1"])
        database = Database.single(relation)
        interpretation = PartitionInterpretation.from_named_blocks(
            {"A": {"a1": {1}, "ghost": {2}}, "B": {"b1": {1, 2}}}
        )
        assert not satisfies_cad(interpretation, database)
        extra, missing = cad_violations(interpretation, database)["A"]
        assert "ghost" in extra and not missing

    def test_cad_fails_with_missing_symbol(self):
        relation = Relation.from_strings("r", "AB", ["a1.b1", "a2.b2"])
        database = Database.single(relation)
        interpretation = PartitionInterpretation.from_named_blocks(
            {"A": {"a1": {1, 2}}, "B": {"b1": {1}, "b2": {2}}}
        )
        assert not satisfies_cad(interpretation, database)
        extra, missing = cad_violations(interpretation, database)["A"]
        assert "a2" in missing

    def test_figure1_interpretation_satisfies_cad_and_eap(self):
        interpretation = PartitionInterpretation.from_named_blocks(
            {
                "A": {"a": {1}, "a1": {4}, "a2": {2, 3}},
                "B": {"b": {1, 4}, "b1": {2, 3}},
                "C": {"c": {1, 2}, "c1": {3, 4}},
            }
        )
        database = Database.single(
            Relation.from_strings("R", "ABC", ["a.b.c", "a2.b1.c", "a2.b1.c1", "a1.b.c1"])
        )
        assert satisfies_cad(interpretation, database)
        assert satisfies_eap(interpretation)
