"""Randomized equivalence suite: integer kernel vs block-based oracle.

The :class:`Partition` facade now computes product/sum/refines/restrict on
canonical label arrays (``repro.partitions.kernel``); the original
frozenset-of-frozensets algorithms live on in ``repro.partitions.oracle``.
Every operation is cross-checked on randomized inputs — shared populations,
overlapping populations, disjoint populations, mixed element types — and the
results must be *identical partitions*: same blocks, same populations.

Also pinned here: the canonicalization invariants of the label arrays, the
n-ary single-pass operations against binary folds, and the memoized
``meaning_many`` DAG evaluator's cache behaviour.
"""

import random

import pytest

from repro.errors import PartitionError
from repro.expressions.ast import attrs
from repro.lattice.partition_lattice import bell_number, set_partitions
from repro.partitions.interpretation import PartitionInterpretation
from repro.partitions.kernel import Universe, canonical_labels
from repro.partitions.operations import product, satisfies_lattice_axioms, sum_
from repro.partitions.oracle import (
    block_product,
    block_product_many,
    block_refines,
    block_restrict,
    block_sum,
    block_sum_many,
)
from repro.partitions.partition import Partition

SEED = 20260730


def random_partition(rng: random.Random, population: list) -> Partition:
    """A random partition of ``population`` with a random number of blocks."""
    if not population:
        return Partition()
    group_count = rng.randint(1, len(population))
    return Partition.from_function(population, lambda _e: rng.randrange(group_count))


def random_population(rng: random.Random) -> list:
    """Populations mixing sizes, offsets and element types."""
    style = rng.randrange(4)
    size = rng.randint(0, 24)
    if style == 0:
        return list(range(size))
    if style == 1:
        offset = rng.randint(0, 10)
        return list(range(offset, offset + size))
    if style == 2:
        return [f"e{i}" for i in range(size)]
    return [(i % 3, i) for i in range(size)]


def assert_same_partition(kernel_result: Partition, oracle_result: Partition) -> None:
    """Identical partitions: same blocks, same populations, same hash, both ways."""
    assert kernel_result == oracle_result
    assert oracle_result == kernel_result
    assert kernel_result.blocks == oracle_result.blocks
    assert kernel_result.population == oracle_result.population
    assert hash(kernel_result) == hash(oracle_result)


class TestRandomizedCrossCheck:
    @pytest.mark.parametrize("trial", range(40))
    def test_product_sum_refines_match_oracle(self, trial):
        rng = random.Random(SEED + trial)
        base = random_population(rng)
        other = random_population(rng)
        if rng.random() < 0.5:
            other = base  # force the shared-population regime half the time
        p = random_partition(rng, base)
        q = random_partition(rng, other)

        assert_same_partition(p.product(q), block_product(p, q))
        assert_same_partition(p.sum(q), block_sum(p, q))
        assert p.refines(q) == block_refines(p, q)
        assert q.refines(p) == block_refines(q, p)

    @pytest.mark.parametrize("trial", range(20))
    def test_restrict_round_trip_matches_oracle(self, trial):
        rng = random.Random(SEED * 7 + trial)
        population = random_population(rng)
        p = random_partition(rng, population)
        target = [e for e in population if rng.random() < 0.6]
        assert_same_partition(p.restrict(target), block_restrict(p, target))
        # Round trip: restricting to the full population is the identity.
        assert p.restrict(population) == p
        # Rebuilding from the rendered blocks is the identity too.
        assert Partition(p.sorted_blocks()) == p

    @pytest.mark.parametrize("trial", range(15))
    def test_lattice_axioms_on_shared_and_disjoint_populations(self, trial):
        rng = random.Random(SEED * 13 + trial)
        shared = random_population(rng)
        disjoint = [("disjoint", i) for i in range(rng.randint(0, 12))]
        x = random_partition(rng, shared)
        y = random_partition(rng, shared if trial % 2 else disjoint)
        z = random_partition(rng, random_population(rng))
        assert satisfies_lattice_axioms(x, y, z)

    @pytest.mark.parametrize("trial", range(10))
    def test_nary_operations_match_binary_folds_and_oracle(self, trial):
        rng = random.Random(SEED * 17 + trial)
        populations = [random_population(rng) for _ in range(rng.randint(1, 4))]
        if rng.random() < 0.5:
            populations = [populations[0]] * len(populations)
        parts = [random_partition(rng, pop) for pop in populations]

        nary_product = product(parts)
        nary_sum = sum_(parts)
        assert_same_partition(nary_product, block_product_many(parts))
        assert_same_partition(nary_sum, block_sum_many(parts))

        folded_product = parts[0]
        folded_sum = parts[0]
        for part in parts[1:]:
            folded_product = folded_product.product(part)
            folded_sum = folded_sum.sum(part)
        assert nary_product == folded_product
        assert nary_sum == folded_sum

    @pytest.mark.parametrize("trial", range(10))
    def test_from_equivalence_pairs_matches_incremental_sums(self, trial):
        rng = random.Random(SEED * 19 + trial)
        population = random_population(rng)
        pairs = [
            (rng.choice(population), rng.choice(population))
            for _ in range(rng.randint(0, 2 * len(population)))
        ] if population else []
        by_union_find = Partition.from_equivalence_pairs(population, pairs)
        reference = Partition.discrete(population)
        for a, b in pairs:
            reference = reference.sum(Partition.from_equivalence_pairs(population, [(a, b)]))
        assert by_union_find == reference


class TestKernelInvariants:
    def test_labels_are_canonical_first_occurrence(self):
        p = Partition([{"c", "d"}, {"a"}, {"b", "e"}])
        labels = p.labels
        seen_max = -1
        for label in labels:
            assert label <= seen_max + 1
            seen_max = max(seen_max, label)
        assert p.block_count() == seen_max + 1

    def test_canonical_labels_relabels_arbitrary_keys(self):
        labels, count = canonical_labels(["x", "y", "x", "z", "y"])
        assert labels == (0, 1, 0, 2, 1)
        assert count == 3

    def test_from_labels_validates_length(self):
        universe = Universe([1, 2, 3])
        with pytest.raises(PartitionError):
            Partition.from_labels(universe, [0, 1])

    def test_from_labels_groups_by_key(self):
        universe = Universe([10, 20, 30, 40])
        p = Partition.from_labels(universe, ["a", "b", "a", "c"])
        assert p == Partition([{10, 30}, {20}, {40}])

    def test_same_universe_operations_stay_on_that_universe(self):
        universe = Universe(range(8))
        p = Partition.from_labels(universe, [i % 2 for i in range(8)])
        q = Partition.from_labels(universe, [i % 3 for i in range(8)])
        assert (p * q).universe is universe
        assert (p + q).universe is universe

    def test_equality_and_hash_across_different_universes(self):
        p = Partition([{1, 2}, {3}])
        q = Partition([{3}, {2, 1}])  # same partition, different element order
        assert p.universe is not q.universe
        assert p == q
        assert hash(p) == hash(q)

    def test_duplicate_identical_blocks_collapse(self):
        # The seed's frozenset-of-frozensets collapsed repeated blocks.
        assert Partition([{1, 2}, {2, 1}]) == Partition([{1, 2}])
        with pytest.raises(PartitionError):
            Partition([{1, 2}, {1}])

    def test_realign_requires_same_population(self):
        p = Partition([{1, 2}, {3}])
        with pytest.raises(PartitionError):
            p.realign(Universe([1, 2]))
        with pytest.raises(PartitionError):
            p.realign(Universe([1, 2, 4]))
        realigned = p.realign(Universe([3, 2, 1]))
        assert realigned == p

    def test_from_equivalence_pairs_validates_pairs_up_front(self):
        with pytest.raises(PartitionError):
            Partition.from_equivalence_pairs([1, 2], [(1, 9)])
        with pytest.raises(PartitionError):
            Partition.from_equivalence_pairs([1, 2], [(9, 1)])

    def test_pickle_round_trip(self):
        import pickle

        p = Partition([{1, 2}, {3}])
        assert pickle.loads(pickle.dumps(p)) == p


class TestBellEnumeration:
    def test_set_partitions_share_one_universe(self):
        parts = list(set_partitions([1, 2, 3, 4]))
        assert len(parts) == bell_number(4)
        assert len(set(parts)) == bell_number(4)
        universes = {p.universe for p in parts}
        assert len(universes) == 1

    def test_enumerated_partitions_match_validating_constructor(self):
        for p in set_partitions(["a", "b", "c"]):
            assert Partition(p.sorted_blocks()) == p


class TestMeaningManyCache:
    def _interpretation(self):
        return PartitionInterpretation.from_named_blocks(
            {
                "A": {"a1": {1, 2}, "a2": {3, 4}},
                "B": {"b1": {1, 3}, "b2": {2, 4}},
                "C": {"c1": {1, 4}, "c2": {2, 3}},
            }
        )

    def test_shared_subexpression_evaluated_once(self):
        interp = self._interpretation()
        A, B, C = attrs("A", "B", "C")
        shared = (A * B) + C
        left = shared * A
        right = shared + B
        interp.meaning_many([left, right])
        info = interp.meaning_cache_info()
        # Distinct nodes: A, B, C, A*B, (A*B)+C, shared*A, shared+B == 7.
        assert info["misses"] == 7
        assert info["size"] == 7
        # `shared` (and its operands) were found in cache while evaluating `right`.
        assert info["hits"] >= 2

    def test_repeated_queries_are_pure_cache_hits(self):
        interp = self._interpretation()
        A, B, C = attrs("A", "B", "C")
        expression = (A + B) * (B + C)
        first = interp.meaning(expression)
        misses_after_first = interp.meaning_cache_info()["misses"]
        hits_before = interp.meaning_cache_info()["hits"]
        for _ in range(5):
            assert interp.meaning(expression) is first
        info = interp.meaning_cache_info()
        assert info["misses"] == misses_after_first
        assert info["hits"] == hits_before + 5

    def test_meaning_many_matches_meaning(self):
        interp = self._interpretation()
        A, B, C = attrs("A", "B", "C")
        batch = [A * B, A + (B * C), (A * B) + (A * C)]
        fresh = self._interpretation()
        assert interp.meaning_many(batch) == [fresh.meaning(e) for e in batch]

    def test_scheme_meaning_uses_nary_product_and_cache(self):
        interp = self._interpretation()
        once = interp.meaning_of_scheme("ABC")
        assert once == interp.meaning("A * B * C")
        assert interp.meaning_of_scheme("ABC") is once

    def test_atomic_partitions_share_eap_universe(self):
        interp = self._interpretation()
        universes = {interp.atomic_partition(a).universe for a in ("A", "B", "C")}
        assert len(universes) == 1
