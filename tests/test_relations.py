"""Tests for repro.relational.relations."""

import pytest

from repro.errors import SchemaError
from repro.relational.relations import Relation
from repro.relational.schema import RelationScheme
from repro.relational.tuples import Row


class TestConstruction:
    def test_from_rows_with_dicts(self):
        relation = Relation.from_rows("r", "AB", [{"A": "a", "B": "b"}])
        assert len(relation) == 1
        assert Row(A="a", B="b") in relation

    def test_from_strings(self):
        relation = Relation.from_strings("r", "ABC", ["a.b.c", "a.b.c"])
        assert len(relation) == 1  # duplicates collapse: a relation is a set

    def test_row_scheme_mismatch_rejected(self):
        scheme = RelationScheme("r", "AB")
        with pytest.raises(SchemaError):
            Relation(scheme, [Row(A="a")])

    def test_empty_relation_allowed(self):
        relation = Relation(RelationScheme("r", "AB"))
        assert len(relation) == 0


class TestAccessors:
    def test_column(self):
        relation = Relation.from_strings("r", "AB", ["a1.b1", "a2.b1"])
        assert relation.column("A") == {"a1", "a2"}
        assert relation.column("B") == {"b1"}

    def test_column_missing_attribute(self):
        relation = Relation.from_strings("r", "AB", ["a.b"])
        with pytest.raises(SchemaError):
            relation.column("C")

    def test_active_domain(self):
        relation = Relation.from_strings("r", "AB", ["a.b"])
        assert relation.active_domain() == {"a", "b"}

    def test_sorted_rows_deterministic(self):
        relation = Relation.from_strings("r", "AB", ["b.x", "a.x"])
        assert [str(row) for row in relation.sorted_rows()] == ["a.x", "b.x"]

    def test_equality_and_hash(self):
        r1 = Relation.from_strings("r", "AB", ["a.b"])
        r2 = Relation.from_strings("r", "AB", ["a.b"])
        assert r1 == r2 and hash(r1) == hash(r2)
        assert r1 != Relation.from_strings("s", "AB", ["a.b"])


class TestDependenciesConvenience:
    def test_satisfies_fd(self):
        from repro.relational.functional_dependencies import FunctionalDependency

        relation = Relation.from_strings("r", "AB", ["a.b", "a2.b"])
        assert relation.satisfies_fd(FunctionalDependency.parse("A -> B"))
        assert not Relation.from_strings("r", "AB", ["a.b", "a.b2"]).satisfies_fd(
            FunctionalDependency.parse("A -> B")
        )

    def test_satisfies_pd(self):
        relation = Relation.from_strings("r", "AB", ["a.b", "a2.b"])
        assert relation.satisfies_pd("A = A*B")

    def test_rename_relation_keeps_rows(self):
        relation = Relation.from_strings("r", "AB", ["a.b"])
        renamed = relation.rename_relation("s")
        assert renamed.name == "s"
        assert renamed.rows == relation.rows

    def test_to_table_contains_all_symbols(self):
        relation = Relation.from_strings("r", "AB", ["a.b"])
        table = relation.to_table()
        assert "a" in table and "b" in table and "r:" in table
