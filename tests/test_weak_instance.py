"""Tests for repro.relational.weak_instance (Honeyman's test, weak-instance checks)."""

import pytest

from repro.errors import ConsistencyError
from repro.relational.database import Database
from repro.relational.functional_dependencies import parse_fd_set
from repro.relational.relations import Relation
from repro.relational.weak_instance import (
    is_consistent_with_fds,
    is_weak_instance,
    projection_containment_report,
    universe_of,
    weak_instance_consistency,
)


@pytest.fixture
def two_relation_database() -> Database:
    return Database(
        [
            Relation.from_strings("R", "AB", ["a1.b1", "a2.b2"]),
            Relation.from_strings("S", "BC", ["b1.c1"]),
        ]
    )


class TestIsWeakInstance:
    def test_positive(self, two_relation_database):
        candidate = Relation.from_strings(
            "w", "ABC", ["a1.b1.c1", "a2.b2.c9"]
        )
        assert is_weak_instance(candidate, two_relation_database)

    def test_negative_missing_tuple(self, two_relation_database):
        candidate = Relation.from_strings("w", "ABC", ["a1.b1.c1"])
        assert not is_weak_instance(candidate, two_relation_database)
        report = projection_containment_report(candidate, two_relation_database)
        assert report["S"] is True and report["R"] is False

    def test_candidate_must_cover_universe(self, two_relation_database):
        candidate = Relation.from_strings("w", "AB", ["a1.b1"])
        with pytest.raises(ConsistencyError):
            is_weak_instance(candidate, two_relation_database)


class TestHoneymanTest:
    def test_consistent_case_produces_witness(self, two_relation_database):
        result = weak_instance_consistency(two_relation_database, parse_fd_set(["A -> B", "B -> C"]))
        assert result.consistent
        assert result.witness is not None
        assert is_weak_instance(result.witness, two_relation_database)
        for fd in parse_fd_set(["A -> B", "B -> C"]):
            assert fd.is_satisfied_by(result.witness)

    def test_inconsistent_case(self):
        database = Database(
            [
                Relation.from_strings("R", "AB", ["a1.b1"]),
                Relation.from_strings("T", "AB", ["a1.b2"]),
            ]
        )
        assert not is_consistent_with_fds(database, parse_fd_set(["A -> B"]))

    def test_single_relation_reduces_to_direct_satisfaction(self):
        # For a single-relation database the weak-instance test coincides with
        # ordinary FD satisfaction (remark after Theorem 6).
        satisfied = Relation.from_strings("R", "AB", ["a1.b1", "a2.b2"])
        violated = Relation.from_strings("R", "AB", ["a1.b1", "a1.b2"])
        fds = parse_fd_set(["A -> B"])
        assert is_consistent_with_fds(Database.single(satisfied), fds)
        assert not is_consistent_with_fds(Database.single(violated), fds)

    def test_classic_transitive_inconsistency(self):
        # R(A,B) = {a b1, a b2} is directly inconsistent with A->B even spread
        # over two relation schemes that join on A.
        database = Database(
            [
                Relation.from_strings("R1", "AB", ["a.b1"]),
                Relation.from_strings("R2", "AC", ["a.c1"]),
                Relation.from_strings("R3", "BC", ["b2.c1"]),
            ]
        )
        # A->B, C->B: the chase equates the R2 tuple's B with b1 (via A->B) and
        # with b2 (via C->B) -> clash.
        assert not is_consistent_with_fds(database, parse_fd_set(["A -> B", "C -> B"]))

    def test_universe_of_includes_fd_attributes(self, two_relation_database):
        fds = parse_fd_set(["A -> D"])
        assert "D" in universe_of(two_relation_database, fds)
