"""Fault tolerance under deterministic chaos: supervision, deadlines, quarantine.

Every scenario here injects failures through :mod:`repro.service.faults` and
asserts the two invariants of the fault-tolerant executor: victims get
*typed* error results (``WorkerCrashed`` / ``Timeout``), and every other
request still answers **byte-identically** to a fault-free run.
"""

import asyncio
import dataclasses
import json
import multiprocessing
from collections import Counter

import pytest

from repro.dependencies.pd import PartitionDependency
from repro.errors import ServiceError
from repro.service import serve_stream
from repro.service.config import ServiceConfig
from repro.service.executor import ShardExecutor, pool_map_encoded
from repro.service.faults import (
    ENV_VAR,
    Fault,
    FaultPlan,
    clear_fault_plan,
    install_fault_plan,
    install_from_env,
    installed_plan,
)
from repro.service.planner import execute_plan
from repro.service.session import Session
from repro.service.supervisor import SupervisedPool, WorkItem, WorkUnit
from repro.service.wire import (
    QueryRequest,
    dump_request_line,
    dump_result_line,
    load_result_line,
    request_cache_key,
)
from repro.workloads.random_service import random_service_requests

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="platform has no fork start method")


def run(coro, timeout=120):
    return asyncio.run(asyncio.wait_for(coro, timeout))


@pytest.fixture(autouse=True)
def _pristine_fault_state(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    clear_fault_plan()
    yield
    clear_fault_plan()


def _pd(text: str) -> PartitionDependency:
    return PartitionDependency.parse(text)


DEPENDENCIES = ("A = A*B", "B = B*C")

#: Distinct queries per id — identical queries share session result-cache
#: slots, which would let a "victim" answer from a twin's cached result and
#: dodge its fault entirely.
QUERIES = ("A = A*C", "C = C*A", "B = B*A", "A = A*D", "D = D*A", "C = C*B")


def _stream(deadline_on=None, deadline_ms=None):
    return [
        QueryRequest(
            kind="implies",
            id=f"q{i}",
            query=_pd(text),
            deadline_ms=deadline_ms if f"q{i}" == deadline_on else None,
        )
        for i, text in enumerate(QUERIES)
    ]


def _reference(requests):
    return [
        dump_result_line(r)
        for r in execute_plan(Session(DEPENDENCIES), requests)
    ]


class TestFaultCodec:
    def test_plan_roundtrip_is_canonical(self):
        plan = FaultPlan(
            seed=42,
            faults=(
                Fault(kind="crash_worker", worker=1, unit=3, incarnation=0),
                Fault(kind="crash_request", request_id="q9"),
                Fault(kind="delay", request_id="q2", delay_ms=25.5),
                Fault(kind="hang", request_id="q4", delay_ms=100.0),
                Fault(kind="corrupt", request_id="q7", incarnation=2),
            ),
        )
        text = plan.to_json()
        assert FaultPlan.from_json(text) == plan
        assert FaultPlan.from_json(text).to_json() == text

    def test_crash_worker_needs_worker_and_unit(self):
        with pytest.raises(ServiceError):
            Fault(kind="crash_worker", worker=0)

    def test_request_faults_need_request_id(self):
        with pytest.raises(ServiceError):
            Fault(kind="crash_request")

    def test_delay_needs_positive_delay_ms(self):
        with pytest.raises(ServiceError):
            Fault(kind="delay", request_id="q1")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError):
            Fault(kind="meteor", request_id="q1")

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ServiceError):
            FaultPlan.from_json("{not json")
        with pytest.raises(ServiceError):
            FaultPlan.from_json('{"faults": [{"kind": "delay"}], "extra": 1}')

    def test_install_and_clear(self):
        plan = FaultPlan(seed=1, faults=(Fault(kind="delay", request_id="x", delay_ms=1.0),))
        assert install_fault_plan(plan.to_json()) == plan
        assert installed_plan() == plan
        clear_fault_plan()
        assert installed_plan() is None

    def test_install_from_env(self, monkeypatch):
        plan = FaultPlan(seed=5, faults=(Fault(kind="hang", request_id="y", delay_ms=2.0),))
        monkeypatch.setenv(ENV_VAR, plan.to_json())
        assert install_from_env() == plan
        monkeypatch.delenv(ENV_VAR)
        clear_fault_plan()
        assert install_from_env() is None

    def test_service_config_validates_fault_plan(self):
        with pytest.raises(ServiceError):
            ServiceConfig(fault_plan="{broken")
        plan = FaultPlan(seed=1, faults=())
        assert ServiceConfig(fault_plan=plan.to_json()).fault_plan == plan.to_json()


@needs_fork
class TestSupervisedExecution:
    def test_transient_worker_crash_is_invisible(self):
        """A worker SIGKILLed mid-stream restarts; the answers do not change."""
        requests = _stream()
        plan = FaultPlan(
            seed=1, faults=(Fault(kind="crash_worker", worker=0, unit=0, incarnation=0),)
        )
        with ShardExecutor(
            shards=2, dependencies=DEPENDENCIES, fault_plan=plan.to_json()
        ) as executor:
            lines = executor.execute_encoded(
                [dump_request_line(r) for r in requests], requests=requests
            )
            stats = executor.supervision_stats()
        assert lines == _reference(requests)
        assert stats["crashes"] == 1
        assert stats["restarts"] == 1
        assert stats["retries"] == 1
        assert stats["quarantined"] == 0

    def test_poison_request_is_quarantined_alone(self):
        """A request that reliably kills workers costs exactly its own line."""
        requests = _stream()
        victim = "q2"
        plan = FaultPlan(seed=2, faults=(Fault(kind="crash_request", request_id=victim),))
        with ShardExecutor(
            shards=2, dependencies=DEPENDENCIES, fault_plan=plan.to_json()
        ) as executor:
            lines = executor.execute_encoded(
                [dump_request_line(r) for r in requests], requests=requests
            )
            stats = executor.supervision_stats()
        reference = _reference(requests)
        for i, request in enumerate(requests):
            if request.id == victim:
                result = load_result_line(lines[i])
                assert not result.ok
                assert result.error["type"] == "WorkerCrashed"
                assert "quarantined" in result.error["message"]
            else:
                assert lines[i] == reference[i]
        assert stats["quarantined"] == 1
        assert stats["splits"] == 1
        assert stats["crashes"] >= 2  # unit crash, retry crash, singleton crash

    def test_cooperative_deadline_timeout(self):
        """A slow request with a budget times out; co-batched requests answer."""
        requests = _stream(deadline_on="q1", deadline_ms=100)
        plan = FaultPlan(seed=3, faults=(Fault(kind="delay", request_id="q1", delay_ms=2000.0),))
        with ShardExecutor(
            shards=2, dependencies=DEPENDENCIES, fault_plan=plan.to_json()
        ) as executor:
            lines = executor.execute_encoded(
                [dump_request_line(r) for r in requests], requests=requests
            )
            stats = executor.supervision_stats()
        reference = _reference(requests)
        for i, request in enumerate(requests):
            if request.id == "q1":
                result = load_result_line(lines[i])
                assert not result.ok
                assert result.error["type"] == "Timeout"
                assert "deadline of 100 ms exceeded" in result.error["message"]
            else:
                assert lines[i] == reference[i]
        # Cooperative expiry: the worker stayed alive, nothing was killed.
        assert stats["crashes"] == 0
        assert stats["timeouts"] == 0

    def test_hung_worker_is_hard_killed(self):
        """A kernel that never reaches a check point is reclaimed by SIGKILL."""
        requests = _stream(deadline_on="q1", deadline_ms=100)
        plan = FaultPlan(seed=4, faults=(Fault(kind="hang", request_id="q1", delay_ms=30_000.0),))
        with ShardExecutor(
            shards=2,
            dependencies=DEPENDENCIES,
            fault_plan=plan.to_json(),
            deadline_grace_ms=400.0,
        ) as executor:
            lines = executor.execute_encoded(
                [dump_request_line(r) for r in requests], requests=requests
            )
            stats = executor.supervision_stats()
        reference = _reference(requests)
        for i, request in enumerate(requests):
            if request.id == "q1":
                result = load_result_line(lines[i])
                assert not result.ok
                assert result.error["type"] == "Timeout"
                assert "hard-killed" in result.error["message"]
            else:
                assert lines[i] == reference[i]
        assert stats["timeouts"] >= 1
        assert stats["restarts"] >= 1

    def test_corrupted_reply_is_retried_clean(self):
        """A torn result line is caught by reply validation and re-run."""
        requests = _stream()
        plan = FaultPlan(
            seed=5, faults=(Fault(kind="corrupt", request_id="q3", incarnation=0),)
        )
        with ShardExecutor(
            shards=2, dependencies=DEPENDENCIES, fault_plan=plan.to_json()
        ) as executor:
            lines = executor.execute_encoded(
                [dump_request_line(r) for r in requests], requests=requests
            )
            stats = executor.supervision_stats()
        assert lines == _reference(requests)
        assert stats["corrupted"] >= 1
        assert stats["restarts"] >= 1

    def test_graceful_close_exits_zero(self):
        """Workers see the shutdown sentinel and exit cleanly, not by SIGTERM."""
        requests = _stream()
        executor = ShardExecutor(shards=2, dependencies=DEPENDENCIES)
        executor.execute(requests)
        processes = [worker.process for worker in executor._pool._workers]
        executor.close()
        assert [process.exitcode for process in processes] == [0, 0]

    def test_worker_side_decode_isolation(self):
        """One undecodable line inside a unit errors alone; the unit survives."""
        good = QueryRequest(kind="implies", id="ok", query=_pd("A = A*B"))
        pool = SupervisedPool(workers=1, encoded_dependencies=[])
        try:
            out = pool.run_units(
                [
                    WorkUnit(
                        items=(
                            WorkItem(index=0, line="{broken json", request_id=None, kind="implies"),
                            WorkItem(
                                index=1,
                                line=dump_request_line(good),
                                request_id="ok",
                                kind="implies",
                            ),
                        )
                    )
                ]
            )
        finally:
            pool.close()
        bad = load_result_line(out[0])
        assert not bad.ok
        assert load_result_line(out[1]).ok
        assert pool.stats.crashes == 0

    def test_parent_side_decode_isolation(self):
        """execute_encoded without pre-decoded requests isolates bad lines."""
        requests = _stream()
        lines = [dump_request_line(r) for r in requests]
        lines.insert(2, '{"v": 1, "kind": "implies"')  # torn mid-object
        with ShardExecutor(shards=2, dependencies=DEPENDENCIES) as executor:
            out = executor.execute_encoded(lines)
        reference = _reference(requests)
        bad = load_result_line(out[2])
        assert not bad.ok
        assert bad.id == "line3"  # unparseable line: positional fallback id
        assert out[:2] == reference[:2]
        assert out[3:] == reference[2:]


def _req_line(i, kind, query, **extra):
    return json.dumps({"v": 2, "id": f"q{i}", "kind": kind, "query": query, **extra})


@needs_fork
class TestCircuitBreaker:
    def test_breaker_trips_to_in_process_and_health_reports_it(self):
        from repro.service.server import QueryServer

        plan = FaultPlan(seed=7, faults=(Fault(kind="crash_request", request_id="q2"),))
        config = ServiceConfig(
            shards=2, breaker_threshold=1, fault_plan=plan.to_json(), max_wait_ms=5.0
        )

        async def scenario():
            server = QueryServer(config)
            host, port = await server.start()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                lines = [
                    _req_line(1, "implies", "A = A*B"),
                    _req_line(2, "implies", "B = B*C"),
                    _req_line(3, "implies", "A = A*C"),
                ]
                writer.write(("".join(line + "\n" for line in lines)).encode())
                await writer.drain()
                answers = {}
                while len(answers) < 3:
                    payload = json.loads(await reader.readline())
                    answers[payload["id"]] = payload
                writer.write(b'{"control":"health"}\n')
                await writer.drain()
                health = json.loads(await reader.readline())["health"]
                writer.close()
                await writer.wait_closed()
                return answers, health
            finally:
                await server.drain()

        answers, health = run(scenario())
        assert health["status"] == "degraded"
        assert health["breaker"]["tripped"] is True
        assert health["backend"] == "session"
        assert health["supervision"]["crashes"] >= 1
        # The poison request was quarantined by the sharded backend before the
        # trip; the healthy requests answered normally.
        assert answers["q1"]["ok"] and answers["q3"]["ok"]
        assert answers["q2"]["error"]["type"] == "WorkerCrashed"

    def test_health_reports_ok_before_any_fault(self):
        config = ServiceConfig(max_wait_ms=5.0)
        out, _ = run(serve_stream('{"control":"health"}', config))
        health = json.loads(out[0])["health"]
        assert health["status"] == "ok"
        assert health["breaker"]["tripped"] is False
        assert health["backend"] == "session"


class TestWindowBudget:
    def test_over_budget_window_degrades_to_retry_lane(self):
        plan = FaultPlan(seed=3, faults=(Fault(kind="delay", request_id="q2", delay_ms=800.0),))
        lines = [
            _req_line(1, "implies", "A = A*B"),
            _req_line(2, "implies", "B = B*C"),
            _req_line(3, "implies", "A = A*C"),
        ]
        config = ServiceConfig(
            window_budget_ms=150.0, fault_plan=plan.to_json(), max_wait_ms=30.0, max_batch=8
        )
        out, stats = run(serve_stream("\n".join(lines), config))
        answers = {json.loads(line)["id"]: json.loads(line) for line in out}
        assert answers["q1"]["ok"] and answers["q3"]["ok"]
        assert answers["q2"]["error"]["type"] == "Timeout"
        assert "window budget" in answers["q2"]["error"]["message"]
        assert stats["windows"]["over_budget"] == 1
        assert stats["windows"]["budget_timeouts"] == 1
        assert stats["windows"]["budget_retried"] == 3

    def test_request_deadline_preempts_window_budget(self):
        # The slow request carries its own (earlier) deadline: it must be
        # reported as that deadline's Timeout, and the window never degrades.
        plan = FaultPlan(seed=3, faults=(Fault(kind="delay", request_id="q2", delay_ms=800.0),))
        lines = [
            _req_line(1, "implies", "A = A*B"),
            _req_line(2, "implies", "B = B*C", deadline_ms=50),
            _req_line(3, "implies", "A = A*C"),
        ]
        config = ServiceConfig(
            window_budget_ms=5_000.0, fault_plan=plan.to_json(), max_wait_ms=30.0, max_batch=8
        )
        out, stats = run(serve_stream("\n".join(lines), config))
        answers = {json.loads(line)["id"]: json.loads(line) for line in out}
        assert answers["q1"]["ok"] and answers["q3"]["ok"]
        assert answers["q2"]["error"]["type"] == "Timeout"
        assert "deadline of 50 ms exceeded" in answers["q2"]["error"]["message"]
        assert stats["windows"]["over_budget"] == 0


@needs_fork
class TestAcceptanceStream:
    """ISSUE 8 acceptance: 200 mixed requests, one crash + one timeout victim."""

    @pytest.fixture(scope="class")
    def modified_stream(self):
        stream = random_service_requests(
            200,
            seed=20260730,
            attribute_count=5,
            theory_count=2,
            pds_per_theory=3,
            max_complexity=2,
            kind_weights={"implies": 5, "equivalent": 3, "consistent": 3, "counterexample": 1},
        )
        key_counts = Counter(request_cache_key(r) for r in stream)

        def unique(request):
            return key_counts[request_cache_key(request)] == 1

        crash_victim = next(r.id for r in stream if r.kind == "implies" and unique(r))
        slow_index = next(
            i for i, r in enumerate(stream) if r.kind == "counterexample" and unique(r)
        )
        stream = list(stream)
        stream[slow_index] = dataclasses.replace(stream[slow_index], deadline_ms=2000)
        plan = FaultPlan(
            seed=20260730,
            faults=(
                Fault(kind="crash_request", request_id=crash_victim),
                Fault(kind="delay", request_id=stream[slow_index].id, delay_ms=30_000.0),
            ),
        )
        return stream, crash_victim, stream[slow_index].id, plan

    def test_two_victims_typed_rest_byte_identical(self, modified_stream):
        stream, crash_victim, slow_victim, plan = modified_stream
        reference = [dump_result_line(r) for r in execute_plan(Session(), stream)]
        with ShardExecutor(shards=2, fault_plan=plan.to_json()) as executor:
            lines = executor.execute_encoded(
                [dump_request_line(r) for r in stream], requests=stream
            )
            stats = executor.supervision_stats()
        assert len(lines) == 200
        differing = [i for i in range(200) if lines[i] != reference[i]]
        victims = {stream[i].id for i in differing}
        assert victims == {crash_victim, slow_victim}
        by_id = {stream[i].id: load_result_line(lines[i]) for i in differing}
        assert by_id[crash_victim].error["type"] == "WorkerCrashed"
        assert by_id[slow_victim].error["type"] == "Timeout"
        assert stats["quarantined"] == 1
        assert stats["crashes"] >= 2

    def test_fault_free_supervised_run_matches_pool_baseline(self, modified_stream):
        stream, _, _, _ = modified_stream
        lines = [dump_request_line(r) for r in stream]
        baseline = pool_map_encoded(lines, shards=2)
        with ShardExecutor(shards=2) as executor:
            supervised = executor.execute_encoded(lines, requests=stream)
        assert supervised == baseline
