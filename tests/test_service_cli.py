"""End-to-end CLI acceptance: ``python -m repro.service`` on a mixed 200-request stream.

The PR's acceptance bar: the CLI must answer a mixed 200-request JSONL
stream (implication, equivalence, weak-instance consistency, counterexample)
with results **byte-identical** to direct in-process API calls — and every
dispatch mode (planner, naive one-at-a-time, multiprocess shards) must
produce the same bytes.  The subprocess runs with a minimal environment so
the test exercises exactly what a deployment would run.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.service.planner import execute_plan
from repro.service.session import Session
from repro.service.wire import dump_result_line, load_result_line, requests_to_jsonl
from repro.workloads.random_service import random_service_requests

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")


def _run_cli(args, stdin_text=None, cwd=None):
    return subprocess.run(
        [sys.executable, "-m", "repro.service", *args],
        input=stdin_text,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        cwd=cwd or str(REPO_ROOT),
        timeout=300,
    )


@pytest.fixture(scope="module")
def acceptance_stream():
    """The mixed 200-request stream of the acceptance criterion."""
    return random_service_requests(
        200,
        seed=20260730,
        attribute_count=5,
        theory_count=2,
        pds_per_theory=3,
        max_complexity=2,
        kind_weights={"implies": 5, "equivalent": 3, "consistent": 3, "counterexample": 1},
    )


@pytest.fixture(scope="module")
def expected_lines(acceptance_stream):
    """Direct in-process API answers, wire-encoded (the byte-identity oracle)."""
    return [dump_result_line(r) for r in execute_plan(Session(), acceptance_stream)]


class TestEndToEnd:
    def test_cli_answers_200_request_stream_byte_identically(
        self, tmp_path, acceptance_stream, expected_lines
    ):
        request_file = tmp_path / "requests.jsonl"
        request_file.write_text(requests_to_jsonl(acceptance_stream), encoding="utf-8")
        output_file = tmp_path / "results.jsonl"

        proc = _run_cli([str(request_file), "-o", str(output_file), "--stats"])
        assert proc.returncode == 0, proc.stderr
        produced = output_file.read_text(encoding="utf-8").strip().split("\n")
        assert len(produced) == 200
        assert produced == expected_lines
        assert "repro.service stats" in proc.stderr

    def test_all_dispatch_modes_agree(self, tmp_path, acceptance_stream, expected_lines):
        request_file = tmp_path / "requests.jsonl"
        # Exercise a prefix in the slower modes to keep the test quick.
        prefix = acceptance_stream[:80]
        request_file.write_text(requests_to_jsonl(prefix), encoding="utf-8")

        planner = _run_cli([str(request_file)])
        naive = _run_cli([str(request_file), "--no-batch"])
        sharded = _run_cli([str(request_file), "--shards", "2"])
        assert planner.returncode == naive.returncode == sharded.returncode == 0, (
            planner.stderr + naive.stderr + sharded.stderr
        )
        assert planner.stdout == naive.stdout == sharded.stdout
        assert planner.stdout.strip().split("\n") == expected_lines[:80]

    def test_every_result_decodes_and_echoes_its_request_id(self, acceptance_stream, expected_lines):
        for request, line in zip(acceptance_stream, expected_lines):
            result = load_result_line(line)
            assert result.id == request.id
            assert result.kind == request.kind


class TestCliSurface:
    def test_stdin_stdout_with_session_dependencies(self):
        stdin = (
            '{"v":1,"kind":"implies","id":"x","query":"A = A * C"}\n'
            "\n"
            '{"v":1,"kind":"implies","id":"y","query":"C = C * A"}\n'
        )
        proc = _run_cli(["-d", "A = A*B; B = B*C", "-"], stdin_text=stdin)
        assert proc.returncode == 0, proc.stderr
        lines = proc.stdout.strip().split("\n")
        assert len(lines) == 2
        assert load_result_line(lines[0]).value == {"implied": True}
        assert load_result_line(lines[1]).value == {"implied": False}

    def test_malformed_lines_become_error_results_in_place(self):
        stdin = (
            '{"v":1,"kind":"implies","id":"ok","query":"A = A"}\n'
            "this is not json\n"
            '{"kind":"implies"}\n'
        )
        proc = _run_cli(["-"], stdin_text=stdin)
        assert proc.returncode == 0
        lines = proc.stdout.strip().split("\n")
        assert len(lines) == 3
        assert load_result_line(lines[0]).ok
        bad = load_result_line(lines[1])
        assert not bad.ok and bad.id == "line2"
        worse = load_result_line(lines[2])
        assert not worse.ok and worse.id == "line3"

    def test_error_results_name_original_file_lines_past_blanks(self):
        stdin = (
            "\n"
            '{"v":1,"kind":"implies","id":"ok","query":"A = A"}\n'
            "\n"
            "\n"
            "not json either\n"
        )
        proc = _run_cli(["-"], stdin_text=stdin)
        assert proc.returncode == 0
        lines = proc.stdout.strip().split("\n")
        assert len(lines) == 2  # blank lines produce no results
        assert load_result_line(lines[0]).ok
        bad = load_result_line(lines[1])
        # Line 5 of the *file*, not line 2 of the non-blank stream.
        assert not bad.ok and bad.id == "line5"

    def test_bad_integer_fields_become_error_results_not_crashes(self):
        stdin = '{"kind":"counterexample","id":"z","query":"A = B","max_pool":"oops"}\n'
        proc = _run_cli(["-"], stdin_text=stdin)
        assert proc.returncode == 0, proc.stderr
        result = load_result_line(proc.stdout.strip())
        assert not result.ok
        assert result.id == "z"  # the id parsed, so the error echoes it
        assert result.error["type"] == "ServiceError"

    def test_error_results_echo_the_request_id_when_one_parses(self):
        stdin = (
            '{"kind":"implies","id":"missing-query"}\n'
            '{"kind":"no-such-kind","id":"weird-kind","query":"A = A"}\n'
            "not json at all\n"
        )
        proc = _run_cli(["-"], stdin_text=stdin)
        assert proc.returncode == 0, proc.stderr
        lines = proc.stdout.strip().split("\n")
        results = [load_result_line(line) for line in lines]
        assert [r.ok for r in results] == [False, False, False]
        # Valid JSON carrying an id: the error result echoes that id, so a
        # client matching answers by id sees its own request fail, instead of
        # an anonymous "lineN" it never sent.
        assert results[0].id == "missing-query"
        assert results[1].id == "weird-kind"
        # Unparseable lines still fall back to the file line number.
        assert results[2].id == "line3"

    def test_missing_input_file_fails_cleanly(self, tmp_path):
        proc = _run_cli([str(tmp_path / "does-not-exist.jsonl")])
        assert proc.returncode == 2
        assert "cannot read" in proc.stderr

    def test_bad_dependencies_fail_cleanly(self):
        proc = _run_cli(["-d", "A = = B", "-"], stdin_text="")
        assert proc.returncode == 2
        assert "cannot parse --dependencies" in proc.stderr

    def test_bad_shard_count_fails_cleanly(self):
        proc = _run_cli(["--shards", "0", "-"], stdin_text="")
        assert proc.returncode == 2

    def test_shards_with_no_batch_is_rejected(self):
        proc = _run_cli(["--shards", "2", "--no-batch", "-"], stdin_text="")
        assert proc.returncode == 2
        assert "cannot be combined" in proc.stderr

    def test_empty_stream_is_fine(self):
        proc = _run_cli(["-"], stdin_text="")
        assert proc.returncode == 0
        assert proc.stdout == ""
