"""Session semantics: uniform queries, artifact sharing, and precise cache invalidation."""

import pytest

from repro.consistency.cad import cad_consistency_for_fpds
from repro.consistency.pd_consistency import pd_consistency
from repro.dependencies.pd import PartitionDependency
from repro.errors import ServiceError
from repro.expressions.parser import parse_expression
from repro.expressions.printer import to_infix
from repro.implication.alg import pd_implies
from repro.lattice.quotient import finite_counterexample, quotient_fragment
from repro.relational.database import Database
from repro.relational.functional_dependencies import FunctionalDependency
from repro.relational.relations import Relation
from repro.service.session import Session
from repro.service.wire import QueryRequest

GAMMA = ["A = A*B", "B = B*C"]


def _pd(text: str) -> PartitionDependency:
    return PartitionDependency.parse(text)


@pytest.fixture
def session() -> Session:
    return Session(GAMMA)


@pytest.fixture
def chain_database() -> Database:
    return Database(
        [
            Relation.from_strings("r", "AB", ["a.b", "a2.b"]),
            Relation.from_strings("s", "BC", ["b.c"]),
        ]
    )


class TestQueryKindsMatchDirectApis:
    def test_implies_matches_pd_implies(self, session):
        for text in ("A = A*C", "C = C*A", "B = B*C", "A + B = B + A"):
            result = session.execute(QueryRequest(kind="implies", query=_pd(text)))
            assert result.ok
            assert result.value == {"implied": pd_implies(GAMMA, text)}

    def test_equivalent_matches_both_direction_leq(self, session):
        left = parse_expression("A * B")
        right = parse_expression("A")
        result = session.execute(QueryRequest(kind="equivalent", left=left, right=right))
        assert result.value == {"equivalent": pd_implies(GAMMA, PartitionDependency(left, right))}

    def test_consistent_weak_instance_matches_pd_consistency(self, session, chain_database):
        result = session.execute(QueryRequest(kind="consistent", database=chain_database))
        direct = pd_consistency(chain_database, [_pd(t) for t in GAMMA])
        assert result.value["consistent"] == direct.consistent
        assert result.value["method"] == "weak_instance"
        if direct.consistent:
            assert result.value["witness_rows"] == len(direct.weak_instance)

    def test_consistent_cad_matches_direct_call(self, chain_database):
        deps = ["A = A*B"]
        session = Session(deps)
        result = session.execute(
            QueryRequest(kind="consistent", database=chain_database, method="cad")
        )
        direct = cad_consistency_for_fpds(chain_database, [_pd(d) for d in deps])
        assert result.value == {
            "consistent": direct.consistent,
            "method": "cad",
            "search_nodes": direct.search_nodes,
        }

    def test_quotient_matches_quotient_fragment(self, session):
        pool = tuple(parse_expression(t) for t in ("A", "A*B", "B", "A + B", "B*C"))
        result = session.execute(QueryRequest(kind="quotient", pool=pool))
        fragment = quotient_fragment([_pd(t) for t in GAMMA], pool)
        assert result.value["classes"] == [to_infix(r) for r in fragment.representatives]
        assert result.value["order"] == sorted([i, j] for (i, j) in fragment.order)

    def test_counterexample_matches_finite_counterexample(self):
        session = Session(["A = A*B"])
        implied = session.execute(QueryRequest(kind="counterexample", query=_pd("A = A*B")))
        assert implied.value == {"implied": True, "size": None, "constants": []}

        refuted = session.execute(
            QueryRequest(kind="counterexample", query=_pd("B = B*A"), max_pool=200)
        )
        lattice = finite_counterexample(["A = A*B"], "B = B*A", max_pool=200)
        assert refuted.value["implied"] is False
        assert refuted.value["size"] == len(lattice)
        assert refuted.value["constants"] == sorted(lattice.constants)

    def test_request_dependencies_override_session_gamma(self, session):
        request = QueryRequest(
            kind="implies", dependencies=(_pd("A = A*D"),), query=_pd("A = A*D")
        )
        assert session.execute(request).value == {"implied": True}
        # The same query against the session's Γ is not implied.
        assert session.execute(QueryRequest(kind="implies", query=_pd("A = A*D"))).value == {
            "implied": False
        }


class TestErrorsAndValidation:
    def test_malformed_request_raises(self, session):
        with pytest.raises(ServiceError):
            session.execute(QueryRequest(kind="implies"))
        with pytest.raises(ServiceError):
            session.execute(QueryRequest(kind="mystery", query=_pd("A = B")))

    def test_decision_procedure_failure_becomes_error_result(self, session, chain_database):
        # Session Γ contains non-FPD sums? No — GAMMA is FPD-shaped, so use a
        # sum dependency to make CAD's validation reject it.
        bad = Session(["C = A + B"])
        result = bad.execute(
            QueryRequest(kind="consistent", database=chain_database, method="cad")
        )
        assert not result.ok
        assert result.error["type"] == "ConsistencyError"
        assert result.value is None

    def test_error_results_are_not_cached(self, chain_database):
        bad = Session(["C = A + B"])
        request = QueryRequest(kind="consistent", database=chain_database, method="cad")
        first = bad.execute(request)
        second = bad.execute(request)
        assert not first.ok and not second.ok
        assert not second.cached


class TestResultCache:
    def test_cache_hit_returns_identical_value_with_new_id(self, session):
        first = session.execute(QueryRequest(kind="implies", id="a", query=_pd("A = A*C")))
        second = session.execute(QueryRequest(kind="implies", id="b", query=_pd("A = A*C")))
        assert not first.cached and second.cached
        assert second.id == "b"
        assert second.value == first.value
        info = session.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_growing_gamma_invalidates_exactly_base_results(self, session):
        base_request = QueryRequest(kind="implies", query=_pd("A = A*D"))
        foreign_request = QueryRequest(
            kind="implies", dependencies=(_pd("A = A*D"),), query=_pd("A = A*D")
        )
        assert session.execute(base_request).value == {"implied": False}
        assert session.execute(foreign_request).value == {"implied": True}
        assert session.cache_info()["size"] == 2

        session.add_dependencies(["C = C*D"])
        # The foreign-Γ entry survives; the base-Γ entry was evicted.
        assert session.execute(foreign_request).cached
        after = session.execute(base_request)
        assert not after.cached
        # And the verdict actually changed — stale cache would have been wrong.
        assert after.value == {"implied": True}
        assert session.generation == 1

    def test_fd_implies_results_survive_gamma_growth(self, session):
        request = QueryRequest(
            kind="fd_implies",
            fds=(FunctionalDependency.parse("A -> B"), FunctionalDependency.parse("B -> C")),
            target=FunctionalDependency.parse("A -> C"),
        )
        assert session.execute(request).value == {"implied": True}
        session.add_dependencies(["D = D*E"])
        # FD implication ignores Γ, so its cache entry must not be evicted.
        assert session.execute(request).cached

    def test_cache_disabled_session(self):
        session = Session(GAMMA, result_cache_size=0)
        request = QueryRequest(kind="implies", query=_pd("A = A*C"))
        assert not session.execute(request).cached
        assert not session.execute(request).cached
        assert session.cache_info()["size"] == 0

    def test_lru_eviction_bound(self):
        session = Session(GAMMA, result_cache_size=3)
        for name in ("D", "E", "F", "G", "H"):
            session.execute(QueryRequest(kind="implies", query=_pd(f"A = A*{name}")))
        assert session.cache_info()["size"] == 3


class TestSharedArtifacts:
    def test_base_context_artifacts_are_shared_between_queries(self, session, chain_database):
        context = session.context_for(QueryRequest(kind="implies", query=_pd("A = A*B")))
        engine_before = context.engine
        session.execute(QueryRequest(kind="consistent", database=chain_database))
        chase_before = context.chase_engine
        session.execute(QueryRequest(kind="consistent", database=chain_database), use_cache=False)
        assert context.engine is engine_before
        assert context.chase_engine is chase_before

    def test_add_dependencies_resets_chase_but_resumes_engine(self, session, chain_database):
        context = session.context_for(QueryRequest(kind="implies", query=_pd("A = A*B")))
        engine_before = context.engine
        session.execute(QueryRequest(kind="consistent", database=chain_database))
        session.add_dependencies(["C = C*D"])
        assert context.engine is engine_before  # incremental resume, not rebuild
        assert context.dependencies[-1] == _pd("C = C*D")

    def test_foreign_context_lru_bound(self):
        session = Session(GAMMA, foreign_context_limit=2)
        for name in ("D", "E", "F"):
            request = QueryRequest(
                kind="implies", dependencies=(_pd(f"A = A*{name}"),), query=_pd("A = A*B")
            )
            session.execute(request)
        assert session.cache_info()["foreign_contexts"] == 2

    def test_execute_many_matches_execute(self, session, chain_database):
        requests = [
            QueryRequest(kind="implies", id=f"i{k}", query=_pd(f"A = A*{n}"))
            for k, n in enumerate("BCDE")
        ] + [QueryRequest(kind="consistent", id="c0", database=chain_database)]
        batched = Session(GAMMA).execute_many(requests, batch=True)
        sequential = Session(GAMMA).execute_many(requests, batch=False)
        assert [(r.id, r.ok, r.value) for r in batched] == [
            (r.id, r.ok, r.value) for r in sequential
        ]
