"""End-to-end observability: trace spans, the metrics registry, kernel profiling.

The observability contract, pinned at every layer:

* telemetry changes **nothing** about answers — a traced run of the
  200-request acceptance stream is byte-identical on its result lines to an
  untraced run, in-process and sharded, fault-free and under a seeded fault
  plan;
* every admitted request yields a well-formed span tree — a root span
  (``<trace>.r``) with ``plan`` / ``execute`` / ``respond`` children — and
  every executed work unit appends one cost record with kernel counters;
* supervised fault escalation (crash → retry → split → quarantine) leaves
  one annotated ``escalation`` span per rung, parented to the victim's root,
  and a hard-killed deadline carries a ``deadline_exceeded`` event;
* ``{"control": "stats"}`` / ``{"control": "health"}`` / ``{"control":
  "metrics"}`` export deterministic canonical JSON (sorted keys, stable
  tier/tenant ordering) that two identically-driven servers reproduce
  byte-for-byte.
"""

import asyncio
import dataclasses
import json
import multiprocessing

import pytest

from repro import profiling
from repro.deadline import check_deadline, deadline_scope
from repro.errors import DeadlineExceeded, ServiceError
from repro.sat.formulas import CnfFormula
from repro.sat.nae3sat import nae_backtracking
from repro.service import telemetry
from repro.service.cli import serve_lines
from repro.service.config import ServiceConfig
from repro.service.executor import ShardExecutor
from repro.service.faults import ENV_VAR, Fault, FaultPlan, clear_fault_plan
from repro.service.planner import execute_plan
from repro.service.server import serve_stream
from repro.service.session import Session
from repro.service.wire import (
    QueryRequest,
    canonical_dumps,
    decode_request,
    dump_request_line,
    dump_result_line,
    encode_request,
    load_request_line,
    load_result_line,
    request_cache_key,
    requests_to_jsonl,
)
from repro.workloads.random_service import random_service_requests

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def run(coro, timeout=120):
    return asyncio.run(asyncio.wait_for(coro, timeout))


@pytest.fixture(autouse=True)
def _pristine_telemetry(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    clear_fault_plan()
    telemetry.reset()
    yield
    clear_fault_plan()
    telemetry.reset()


@pytest.fixture(scope="module")
def acceptance_stream():
    """The mixed 200-request stream of the acceptance criterion (CLI/server seed)."""
    return random_service_requests(
        200,
        seed=20260730,
        attribute_count=5,
        theory_count=2,
        pds_per_theory=3,
        max_complexity=2,
        kind_weights={"implies": 5, "equivalent": 3, "consistent": 3, "counterexample": 1},
    )


@pytest.fixture(scope="module")
def expected_lines(acceptance_stream):
    return [dump_result_line(r) for r in execute_plan(Session(), acceptance_stream)]


def _span_children(spans):
    """Map parent span id -> list of child span names."""
    children = {}
    for span in spans:
        children.setdefault(span.get("parent"), []).append(span["name"])
    return children


def _roots(spans):
    return [span for span in spans if span["span"].endswith(".r") and span["name"] == "request"]


# ---------------------------------------------------------------------------
# Kernel profiling counters
# ---------------------------------------------------------------------------


class TestKernelProfiling:
    def test_inactive_by_default(self):
        assert profiling.active() is None

    def test_profile_scope_activates_and_deactivates(self):
        with profiling.profile() as prof:
            assert profiling.active() is prof
        assert profiling.active() is None

    def test_nested_scopes_accumulate_into_parent(self):
        with profiling.profile() as outer:
            with profiling.profile() as inner:
                profiling.active().chase_steps += 5
            assert inner.chase_steps == 5
            outer.backtrack_nodes += 1
        assert outer.chase_steps == 5  # merged up on inner exit
        assert outer.backtrack_nodes == 1

    def test_merge_and_as_dict(self):
        a = profiling.KernelProfile()
        b = profiling.KernelProfile()
        a.closure_pops = 3
        b.closure_pops = 4
        b.deadline_checks = 2
        a.merge(b)
        assert a.as_dict() == {
            "chase_steps": 0,
            "closure_pops": 7,
            "backtrack_nodes": 0,
            "deadline_checks": 2,
            "deadline_exceeded": 0,
        }
        assert a.total_work() == 7

    def test_backtracking_sat_counts_nodes(self):
        formula = CnfFormula.of([["x1", "x2", "~x3"], ["~x1", "x2", "x3"], ["x1", "~x2", "x3"]])
        with profiling.profile() as prof:
            assert nae_backtracking(formula) is not None
        assert prof.backtrack_nodes > 0
        assert prof.deadline_checks >= prof.backtrack_nodes

    def test_session_kinds_drive_their_kernels(self):
        # consistent → chase merges; counterexample → the Theorem 8 product
        # closure (quotient_fragment itself has no search loop to count).
        session = Session()
        by_kind = {}
        for kind in ("consistent", "counterexample"):
            requests = random_service_requests(8, seed=29, kind_weights={kind: 1})
            with profiling.profile() as prof:
                for request in requests:
                    session.execute(request, use_cache=False)
            by_kind[kind] = prof.as_dict()
        assert by_kind["consistent"]["chase_steps"] > 0
        assert by_kind["counterexample"]["closure_pops"] > 0
        for counters in by_kind.values():
            assert counters["deadline_checks"] > 0

    def test_expired_deadline_increments_exceeded_counter(self):
        with profiling.profile() as prof:
            with pytest.raises(DeadlineExceeded):
                with deadline_scope(0.0):
                    check_deadline()
        assert prof.deadline_exceeded == 1


# ---------------------------------------------------------------------------
# Wire: the optional trace field
# ---------------------------------------------------------------------------


class TestWireTrace:
    def test_trace_roundtrips(self):
        request = load_request_line('{"v":3,"kind":"implies","id":"x","query":"A = A*B","trace":"t1"}')
        assert request.trace == "t1"
        assert decode_request(encode_request(request)).trace == "t1"

    def test_trace_refused_on_old_envelopes(self):
        for version in (1, 2):
            with pytest.raises(ServiceError, match="'trace' needs wire version 3"):
                load_request_line(
                    json.dumps({"v": version, "kind": "implies", "id": "x", "query": "A = A*B", "trace": "t1"})
                )

    def test_trace_must_be_nonempty_string(self):
        with pytest.raises(ServiceError):
            load_request_line('{"v":3,"kind":"implies","id":"x","query":"A = A*B","trace":""}')

    def test_trace_excluded_from_cache_key(self):
        plain = load_request_line('{"v":3,"kind":"implies","id":"x","query":"A = A*B"}')
        traced = dataclasses.replace(plain, trace="t-123")
        assert request_cache_key(traced) == request_cache_key(plain)

    def test_ensure_trace_mints_and_preserves(self):
        plain = load_request_line('{"v":3,"kind":"implies","id":"x","query":"A = A*B"}')
        minted = telemetry.ensure_trace(plain)
        assert minted.trace is not None
        assert telemetry.ensure_trace(minted) is minted
        assert telemetry.root_span_id(minted.trace) == f"{minted.trace}.r"


# ---------------------------------------------------------------------------
# Registry, tracer, cost log
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_export_is_deterministic_canonical_json(self):
        def feed(registry):
            registry.inc("b.count", 2)
            registry.inc("a.count")
            registry.gauge("z.depth", 3.5)
            registry.observe("lat", 1.2)
            registry.observe("lat", 700.0)

        one, two = telemetry.MetricsRegistry(), telemetry.MetricsRegistry()
        feed(one), feed(two)
        assert canonical_dumps(one.export()) == canonical_dumps(two.export())
        exported = one.export()
        assert list(exported["counters"]) == ["a.count", "b.count"]
        histogram = exported["histograms"]["lat"]
        assert histogram["count"] == 2
        assert sum(histogram["counts"]) == 2

    def test_absorb_flattens_nested_stats_to_gauges(self):
        registry = telemetry.MetricsRegistry()
        registry.absorb(
            "service",
            {"server": {"connections_open": 2, "mode": "session", "ok": True}, "shed": 0},
        )
        gauges = registry.export()["gauges"]
        assert gauges["service.server.connections_open"] == 2
        assert gauges["service.server.ok"] == 1
        assert gauges["service.shed"] == 0
        assert "service.server.mode" not in gauges  # strings are not metrics

    def test_histogram_overflow_slot(self):
        registry = telemetry.MetricsRegistry()
        registry.observe("lat", 10_000_000.0)
        histogram = registry.export()["histograms"]["lat"]
        assert histogram["counts"][-1] == 1


class TestTracer:
    def test_span_payload_shape(self):
        tracer = telemetry.Tracer()
        span = tracer.start_span("request", trace_id="t1", span_id="t1.r")
        span.annotate("kind", "implies")
        span.event("window_closed")
        span.end()
        (payload,) = tracer.drain()
        assert payload["trace"] == "t1"
        assert payload["span"] == "t1.r"
        assert payload["parent"] is None
        assert payload["name"] == "request"
        assert payload["attrs"] == {"kind": "implies"}
        assert payload["events"][0]["name"] == "window_closed"
        assert "at_ms" in payload["events"][0]
        assert payload["duration_ms"] >= 0

    def test_adopt_takes_foreign_payloads(self):
        tracer = telemetry.Tracer()
        tracer.adopt([{"trace": "t9", "span": "t9.r", "name": "evaluate"}, "garbage"])
        assert tracer.snapshot()["adopted"] == 1
        assert [span["trace"] for span in tracer.drain()] == ["t9"]

    def test_buffer_is_bounded(self):
        tracer = telemetry.Tracer(limit=4)
        for index in range(10):
            tracer.start_span(f"s{index}").end()
        drained = tracer.drain()
        assert len(drained) == 4
        assert drained[-1]["name"] == "s9"


class TestWorkUnit:
    def test_disabled_is_a_noop(self):
        with telemetry.work_unit("implies") as prof:
            assert prof is None
        assert telemetry.cost_log().snapshot() == {"recorded": 0, "pending": 0}

    def test_enabled_records_cost_and_metrics(self):
        telemetry.configure(trace=True)
        with telemetry.work_unit("implies", method="", gamma=3, requests=8, query_size=40) as prof:
            prof.closure_pops += 11
        (record,) = telemetry.cost_log().drain()
        assert record["kind"] == "implies"
        assert record["gamma"] == 3
        assert record["requests"] == 8
        assert record["query_size"] == 40
        assert record["kernel"]["closure_pops"] == 11
        assert record["wall_ms"] >= 0
        exported = telemetry.registry().export()
        assert exported["counters"]["costlog.records"] == 1
        assert exported["counters"]["kernel.closure_pops"] == 11

    def test_record_lands_even_when_the_unit_raises(self):
        telemetry.configure(trace=True)
        with pytest.raises(RuntimeError):
            with telemetry.work_unit("consistent"):
                raise RuntimeError("kernel fell over")
        (record,) = telemetry.cost_log().drain()
        assert record["kind"] == "consistent"

    def test_drain_and_adopt_reply_roundtrip(self):
        telemetry.configure(trace=True)
        telemetry.tracer().start_span("evaluate", trace_id="t1", parent_id="t1.r").end()
        with telemetry.work_unit("implies") as prof:
            prof.chase_steps += 2
        payload = telemetry.drain_for_reply()
        assert set(payload) == {"spans", "cost"}
        info = {"answered": 3, **payload}
        telemetry.adopt_reply(info)
        assert info == {"answered": 3}  # telemetry keys popped for downstream consumers
        assert telemetry.tracer().snapshot()["adopted"] == 1
        # 2 from the local work_unit plus 2 re-counted on adopt: in a real
        # deployment the first half lands in the worker's own (discarded)
        # registry, so the parent counts each record exactly once.
        assert telemetry.registry().export()["counters"]["kernel.chase_steps"] == 4


# ---------------------------------------------------------------------------
# File-mode acceptance: byte identity + complete traces
# ---------------------------------------------------------------------------


class TestFileModeAcceptance:
    def test_traced_run_is_byte_identical_and_trace_is_complete(
        self, tmp_path, acceptance_stream, expected_lines
    ):
        lines = requests_to_jsonl(acceptance_stream).strip().split("\n")
        untraced, _ = serve_lines(lines, config=ServiceConfig())
        telemetry.reset()
        metrics_dir = tmp_path / "telemetry"
        traced, _ = serve_lines(
            lines, config=ServiceConfig(trace=True, metrics_dir=str(metrics_dir))
        )
        assert traced == untraced == expected_lines

        spans = [json.loads(line) for line in (metrics_dir / "trace.jsonl").open()]
        roots = _roots(spans)
        assert len(roots) == len(acceptance_stream)
        children = _span_children(spans)
        for root in roots:
            stages = sorted(n for n in children[root["span"]] if n in ("plan", "execute", "respond"))
            assert stages == ["execute", "plan", "respond"]
        # session-evaluated requests (the batch lattice paths answer whole
        # groups without per-request evaluate calls) parent under their roots
        evaluates = [span for span in spans if span["name"] == "evaluate"]
        assert evaluates
        root_ids = {root["span"] for root in roots}
        assert all(span["parent"] in root_ids for span in evaluates)

        cost = [json.loads(line) for line in (metrics_dir / "costlog.jsonl").open()]
        assert cost, "executed work units must produce cost records"
        for record in cost:
            assert set(record) == {"kind", "method", "gamma", "requests", "query_size", "kernel", "wall_ms"}
        # one record per *executed* work unit: every distinct request is
        # covered (the stream's one cache-key duplicate answers from the
        # result cache and is never executed)
        distinct = len({request_cache_key(r) for r in acceptance_stream})
        assert sum(record["requests"] for record in cost) >= distinct
        assert any(any(record["kernel"].values()) for record in cost)

        metrics = [json.loads(line) for line in (metrics_dir / "metrics.jsonl").open()]
        counters = metrics[-1]["counters"]
        assert counters["trace.requests_started"] == len(acceptance_stream)
        assert counters["trace.requests_finished"] == len(acceptance_stream)
        assert counters["costlog.records"] == len(cost)

    def test_sharded_traced_run_is_byte_identical_with_worker_spans(
        self, tmp_path, acceptance_stream, expected_lines
    ):
        prefix = acceptance_stream[:60]
        lines = requests_to_jsonl(prefix).strip().split("\n")
        metrics_dir = tmp_path / "telemetry"
        traced, _ = serve_lines(
            lines,
            config=ServiceConfig(shards=2, trace=True, metrics_dir=str(metrics_dir)),
        )
        assert traced == expected_lines[:60]
        spans = [json.loads(line) for line in (metrics_dir / "trace.jsonl").open()]
        assert len(_roots(spans)) == len(prefix)
        # evaluate spans crossed the process boundary and still parent correctly
        evaluates = [span for span in spans if span["name"] == "evaluate"]
        assert evaluates
        assert all(span["parent"] == f"{span['trace']}.r" for span in evaluates)
        assert [json.loads(line) for line in (metrics_dir / "costlog.jsonl").open()]

    def test_traced_run_under_fault_plan_still_traces_every_request(
        self, tmp_path, acceptance_stream, expected_lines
    ):
        prefix = acceptance_stream[:40]
        victim = prefix[7].id
        plan = FaultPlan(seed=5, faults=(Fault(kind="crash_request", request_id=victim),))
        lines = requests_to_jsonl(prefix).strip().split("\n")
        metrics_dir = tmp_path / "telemetry"
        traced, _ = serve_lines(
            lines,
            config=ServiceConfig(
                shards=2, trace=True, metrics_dir=str(metrics_dir), fault_plan=plan.to_json()
            ),
        )
        for index, request in enumerate(prefix):
            if request.id == victim:
                result = load_result_line(traced[index])
                assert not result.ok and result.error["type"] == "WorkerCrashed"
            else:
                assert traced[index] == expected_lines[index]
        spans = [json.loads(line) for line in (metrics_dir / "trace.jsonl").open()]
        assert len(_roots(spans)) == len(prefix)
        escalations = [span for span in spans if span["name"] == "escalation"]
        assert {span["attrs"]["step"] for span in escalations} >= {"retry", "split", "quarantine"}


# ---------------------------------------------------------------------------
# Span trees under injected faults (supervised executor)
# ---------------------------------------------------------------------------


class TestEscalationSpans:
    DEPENDENCIES = ("A = A*B", "B = B*C")
    QUERIES = ("A = A*C", "C = C*A", "B = B*A", "A = A*D", "D = D*A", "C = C*B")

    def _stream(self, deadline_on=None, deadline_ms=None):
        from repro.dependencies.pd import PartitionDependency

        return [
            QueryRequest(
                kind="implies",
                id=f"q{i}",
                query=PartitionDependency.parse(text),
                trace=f"tr{i}",
                deadline_ms=deadline_ms if f"q{i}" == deadline_on else None,
            )
            for i, text in enumerate(self.QUERIES)
        ]

    def _execute(self, requests, plan, **kwargs):
        telemetry.configure(trace=True)
        with ShardExecutor(
            shards=2, dependencies=self.DEPENDENCIES, fault_plan=plan.to_json(), **kwargs
        ) as executor:
            lines = executor.execute_encoded(
                [dump_request_line(r) for r in requests], requests=requests
            )
        return lines, telemetry.tracer().drain()

    def test_poison_request_leaves_one_span_per_escalation_rung(self):
        requests = self._stream()
        victim = "q2"
        victim_trace = next(r.trace for r in requests if r.id == victim)
        plan = FaultPlan(seed=2, faults=(Fault(kind="crash_request", request_id=victim),))
        lines, spans = self._execute(requests, plan)

        result = load_result_line(lines[2])
        assert not result.ok and result.error["type"] == "WorkerCrashed"

        escalations = [span for span in spans if span["name"] == "escalation"]
        victim_steps = [
            span["attrs"]["step"] for span in escalations if span["trace"] == victim_trace
        ]
        # the ladder: unit crash retries, retry crash splits, singleton crash quarantines
        assert victim_steps.count("quarantine") == 1
        assert "retry" in victim_steps or "split" in victim_steps
        # every escalation span parents to its victim's root, derived from the trace alone
        for span in escalations:
            assert span["parent"] == f"{span['trace']}.r"
            assert span["attrs"]["reason"]

    def test_hard_killed_deadline_carries_deadline_exceeded_event(self):
        requests = self._stream(deadline_on="q1", deadline_ms=100)
        plan = FaultPlan(seed=4, faults=(Fault(kind="hang", request_id="q1", delay_ms=30_000.0),))
        lines, spans = self._execute(requests, plan, deadline_grace_ms=400.0)

        result = load_result_line(lines[1])
        assert not result.ok and result.error["type"] == "Timeout"

        timeouts = [
            span
            for span in spans
            if span["name"] == "escalation" and span["attrs"]["step"] == "timeout"
        ]
        assert timeouts, "a hard-killed singleton must leave a timeout escalation span"
        for span in timeouts:
            assert span["trace"] == "tr1"
            assert span["parent"] == "tr1.r"
            assert any(event["name"] == "deadline_exceeded" for event in span["events"])

    def test_fault_free_run_records_unit_dispatch_spans(self):
        requests = self._stream()
        plan = FaultPlan(seed=9, faults=())
        lines, spans = self._execute(requests, plan)
        assert all(load_result_line(line).ok for line in lines)
        dispatches = [span for span in spans if span["name"] == "work_unit_dispatch"]
        assert dispatches
        for span in dispatches:
            assert span["attrs"]["items"] >= 1
            assert span["parent"] == f"{span['trace']}.r"


# ---------------------------------------------------------------------------
# Server: traced serving, metrics control line, deterministic stats/health
# ---------------------------------------------------------------------------


class TestServerTelemetry:
    def test_traced_server_is_byte_identical_with_complete_span_trees(
        self, tmp_path, acceptance_stream, expected_lines
    ):
        prefix = acceptance_stream[:80]
        stream = requests_to_jsonl(prefix)
        untraced, _ = run(serve_stream(stream, ServiceConfig(max_batch=16)))
        telemetry.reset()
        metrics_dir = tmp_path / "telemetry"
        traced, _ = run(
            serve_stream(
                stream,
                ServiceConfig(max_batch=16, trace=True, metrics_dir=str(metrics_dir)),
            )
        )
        assert traced == untraced == expected_lines[:80]

        spans = [json.loads(line) for line in (metrics_dir / "trace.jsonl").open()]
        roots = _roots(spans)
        assert len(roots) == len(prefix)
        children = _span_children(spans)
        for root in roots:
            stages = sorted(n for n in children[root["span"]] if n in ("plan", "execute", "respond"))
            assert stages == ["execute", "plan", "respond"]
            assert root["attrs"]["window_size"] >= 1
            assert any(event["name"] == "window_closed" for event in root.get("events", ()))
        cost = [json.loads(line) for line in (metrics_dir / "costlog.jsonl").open()]
        assert sum(record["requests"] for record in cost) >= len(prefix)

    def test_metrics_control_line(self, acceptance_stream):
        prefix = acceptance_stream[:10]
        lines = requests_to_jsonl(prefix).strip().split("\n") + ['{"control":"metrics"}']
        answers, _ = run(serve_stream("\n".join(lines), ServiceConfig(trace=True)))
        payload = json.loads(answers[-1])
        assert payload["control"] == "metrics"
        metrics = payload["metrics"]
        # the snapshot is cut when the control line is *read*, so decode-time
        # counters are visible while respond-time histograms may still be empty
        assert metrics["counters"]["trace.requests_started"] == len(prefix)
        assert metrics["gauges"]["service.server.connections_served"] >= 0
        assert set(metrics) == {"counters", "costlog", "gauges", "histograms", "trace"}
        assert metrics["trace"]["started"] > 0
        # canonical export: the line itself re-serializes byte-identically
        assert answers[-1] == canonical_dumps({"control": "metrics", "metrics": metrics})

    def test_stats_and_health_are_canonical_and_reproducible(self, acceptance_stream):
        prefix = acceptance_stream[:12]
        lines = requests_to_jsonl(prefix).strip().split("\n") + [
            '{"control":"stats"}',
            '{"control":"health"}',
        ]

        def drive():
            answers, _ = run(serve_stream("\n".join(lines), ServiceConfig(max_batch=len(prefix) + 4)))
            return answers[-2], answers[-1]

        stats_one, health_one = drive()
        stats_two, health_two = drive()
        for line in (stats_one, health_one):
            payload = json.loads(line)
            assert line == canonical_dumps(payload)  # canonical bytes on the wire
        # health is time-free and must reproduce byte-for-byte across runs
        assert health_one == health_two
        stats = json.loads(stats_one)["stats"]
        assert list(stats["result_cache"]["per_tenant"]) == sorted(
            stats["result_cache"]["per_tenant"]
        )
        assert json.loads(stats_two)["stats"]["result_cache"] == stats["result_cache"]

    def test_supervision_reports_per_worker_restart_latency(self):
        from repro.dependencies.pd import PartitionDependency

        requests = [
            QueryRequest(kind="implies", id=f"q{i}", query=PartitionDependency.parse(text))
            for i, text in enumerate(("A = A*C", "C = C*A", "B = B*A", "A = A*D"))
        ]
        plan = FaultPlan(
            seed=1, faults=(Fault(kind="crash_worker", worker=0, unit=0, incarnation=0),)
        )
        with ShardExecutor(
            shards=2, dependencies=("A = A*B",), fault_plan=plan.to_json()
        ) as executor:
            executor.execute_encoded(
                [dump_request_line(r) for r in requests], requests=requests
            )
            supervision = executor.supervision_stats()
        # this is the document {"control": "health"} serves under "supervision"
        assert supervision["restarts"] >= 1
        assert supervision["last_restart_ms"] > 0
        assert supervision["restart_mean_ms"] > 0
        assert supervision["restarts_by_worker"].get("0", 0) >= 1

    def test_untraced_fresh_supervision_reports_null_restart_latency(self):
        with ShardExecutor(shards=2, dependencies=()) as executor:
            stats = executor.supervision_stats()
        assert stats["restarts"] == 0
        assert stats["restart_mean_ms"] is None
        assert stats["last_restart_ms"] is None
        assert stats["restarts_by_worker"] == {}
