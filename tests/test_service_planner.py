"""Planner properties: stable grouping, byte-identical results, real amortization."""

import pytest

from repro.dependencies.pd import PartitionDependency
from repro.relational.database import Database
from repro.relational.functional_dependencies import FunctionalDependency
from repro.relational.relations import Relation
from repro.service.planner import (
    IMPLICATION_CHUNK,
    execute_plan,
    naive_dispatch,
    plan,
    plan_summary,
)
from repro.service.session import Session
from repro.service.wire import QueryRequest, dump_result_line
from repro.workloads.random_service import random_service_requests


def _pd(text: str) -> PartitionDependency:
    return PartitionDependency.parse(text)


def _encoded(results):
    return [dump_result_line(r) for r in results]


class TestPlanShape:
    def test_groups_by_kind_and_dependency_set(self):
        gamma1 = (_pd("A = A*B"),)
        gamma2 = (_pd("B = B*C"),)
        requests = [
            QueryRequest(kind="implies", dependencies=gamma1, query=_pd("A = A*B")),
            QueryRequest(kind="implies", dependencies=gamma2, query=_pd("B = B*C")),
            QueryRequest(kind="implies", dependencies=gamma1, query=_pd("B = B*A")),
            QueryRequest(kind="equivalent", dependencies=gamma1, left=_pd("A=A").left, right=_pd("B=B").left),
        ]
        batches = plan(requests)
        assert [(b.kind, b.indices) for b in batches] == [
            ("implies", (0, 2)),
            ("implies", (1,)),
            ("equivalent", (3,)),
        ]

    def test_consistency_methods_do_not_mix(self):
        db = Database([Relation.from_strings("r", "AB", ["a.b"])])
        requests = [
            QueryRequest(kind="consistent", database=db, method="weak_instance"),
            QueryRequest(kind="consistent", database=db, method="cad"),
            QueryRequest(kind="consistent", database=db, method="weak_instance"),
        ]
        batches = plan(requests)
        assert [(b.method, b.indices) for b in batches] == [
            ("weak_instance", (0, 2)),
            ("cad", (1,)),
        ]

    def test_fd_implies_groups_on_fd_set(self):
        sigma1 = (FunctionalDependency.parse("A -> B"),)
        sigma2 = (FunctionalDependency.parse("B -> C"),)
        target = FunctionalDependency.parse("A -> B")
        requests = [
            QueryRequest(kind="fd_implies", fds=sigma1, target=target),
            QueryRequest(kind="fd_implies", fds=sigma2, target=target),
            QueryRequest(kind="fd_implies", fds=sigma1, target=FunctionalDependency.parse("A -> A")),
        ]
        batches = plan(requests)
        assert [b.indices for b in batches] == [(0, 2), (1,)]

    def test_plan_summary(self):
        requests = random_service_requests(40, seed=13, theory_count=2)
        summary = plan_summary(requests)
        assert summary["requests"] == 40
        assert summary["batches"] >= 2
        assert sum(summary["requests_per_kind"].values()) == 40
        assert summary["largest_batch"] <= 40


class TestByteIdenticalResults:
    @pytest.mark.parametrize("seed", [3, 17, 91])
    def test_planner_equals_naive_and_sequential_on_mixed_streams(self, seed):
        requests = random_service_requests(
            60, seed=seed, include_cad=True, theory_count=3, pds_per_theory=3
        )
        planned = _encoded(execute_plan(Session(), requests))
        sequential = _encoded(Session().execute_many(requests, batch=False))
        naive = _encoded(naive_dispatch(requests))
        assert planned == sequential == naive

    def test_results_preserve_input_order_and_ids(self):
        requests = random_service_requests(25, seed=5)
        results = execute_plan(Session(), requests)
        assert [r.id for r in results] == [f"q{i}" for i in range(25)]

    def test_base_gamma_stream_against_session_dependencies(self):
        requests = [
            QueryRequest(kind="implies", id=f"q{i}", query=_pd(f"A = A*{n}"))
            for i, n in enumerate("BCDBC")
        ]
        session = Session(["A = A*B", "B = B*C"])
        planned = _encoded(execute_plan(session, requests))
        naive = _encoded(naive_dispatch(requests, ["A = A*B", "B = B*C"]))
        assert planned == naive

    def test_chunking_boundary_exact(self):
        # A group larger than one chunk must still answer every query.
        count = IMPLICATION_CHUNK * 2 + 3
        gamma = (_pd("A = A*B"), _pd("B = B*C"))
        requests = [
            QueryRequest(kind="implies", id=f"q{i}", dependencies=gamma, query=_pd("A = A*C"))
            if i % 2
            else QueryRequest(kind="implies", id=f"q{i}", dependencies=gamma, query=_pd("C = C*A"))
            for i in range(count)
        ]
        results = execute_plan(Session(), requests)
        assert len(results) == count
        for i, result in enumerate(results):
            assert result.value == {"implied": bool(i % 2)}


class TestCacheInterplay:
    def test_second_plan_run_is_fully_cached(self):
        requests = random_service_requests(30, seed=9, theory_count=2)
        session = Session()
        first = execute_plan(session, requests)
        second = execute_plan(session, requests)
        assert _encoded(first) == _encoded(second)
        oks = [r for r in first if r.ok]
        assert all(r.cached for r, f in zip(second, first) if f.ok)
        assert session.cache_info()["hits"] >= len(oks)

    def test_misses_counted_once_per_uncached_request(self):
        db = Database([Relation.from_strings("r", "AB", ["a.b"])])
        requests = [
            QueryRequest(kind="consistent", id="c", database=db),
            QueryRequest(kind="implies", id="i", query=_pd("A = A*B")),
        ]
        session = Session(["A = A*B"])
        execute_plan(session, requests)
        info = session.cache_info()
        assert info["misses"] == 2  # one probe per uncached request, not two
        assert info["hits"] == 0

    def test_duplicate_requests_within_one_stream_hit_cache(self):
        request = QueryRequest(kind="implies", query=_pd("A = A*B"))
        session = Session(["A = A*B"])
        results = execute_plan(session, [request.with_id("a"), request.with_id("b")])
        assert results[0].value == results[1].value == {"implied": True}
        assert results[1].id == "b"
        assert results[1].cached  # deduped within the batch, not recomputed

    def test_duplicate_expensive_requests_compute_once(self, monkeypatch):
        import repro.service.session as session_module

        calls = {"n": 0}
        real = session_module.finite_counterexample

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(session_module, "finite_counterexample", counting)
        request = QueryRequest(
            kind="counterexample",
            dependencies=(_pd("A = A*B"),),
            query=_pd("B = B*A"),
            max_pool=200,
        )
        results = execute_plan(
            Session(), [request.with_id("a"), request.with_id("b"), request.with_id("c")]
        )
        assert calls["n"] == 1  # one L_H construction for three identical requests
        assert [r.id for r in results] == ["a", "b", "c"]
        assert results[0].value == results[1].value == results[2].value
        assert results[1].cached and results[2].cached
