"""Tests for the consistency engines: Theorems 6, 7, 12 (weak-instance and PD consistency)."""

import pytest

from repro.consistency.pd_consistency import (
    consistency_with_explicit_weak_instance,
    is_pd_consistent,
    pd_chase_engine,
    pd_consistency,
    pd_consistency_many,
    repair_sum_constraints_once,
    sum_constraint_violations,
)
from repro.consistency.normalization import SumConstraint
from repro.consistency.weak_instance_fd import fd_consistency, fpd_consistency, is_fpd_consistent
from repro.errors import ConsistencyError
from repro.relational.database import Database
from repro.relational.functional_dependencies import parse_fd_set
from repro.relational.relations import Relation
from repro.relational.weak_instance import is_weak_instance


@pytest.fixture
def consistent_database() -> Database:
    return Database(
        [
            Relation.from_strings("R", "AB", ["a1.b1", "a2.b2"]),
            Relation.from_strings("S", "BC", ["b1.c1"]),
        ]
    )


@pytest.fixture
def inconsistent_database() -> Database:
    # Both relations mention a1 with different B values -> A -> B cannot hold in any weak instance.
    return Database(
        [
            Relation.from_strings("R", "AB", ["a1.b1"]),
            Relation.from_strings("T", "AB", ["a1.b2"]),
        ]
    )


class TestTheorem6FpdConsistency:
    def test_consistent_case_builds_interpretation_witness(self, consistent_database):
        result = fpd_consistency(consistent_database, ["A = A*B", "B = B*C"])
        assert result.consistent
        assert result.weak_instance is not None
        assert is_weak_instance(result.weak_instance, consistent_database)
        # The proof's witness: I(w) satisfies d and E.
        assert result.interpretation is not None
        assert result.interpretation.satisfies_database(consistent_database)
        assert result.interpretation.satisfies_pd("A = A*B")
        assert result.interpretation.satisfies_pd("B = B*C")
        assert result.interpretation.satisfies_eap()

    def test_inconsistent_case(self, inconsistent_database):
        assert not is_fpd_consistent(inconsistent_database, ["A = A*B"])

    def test_rejects_non_fpds(self, consistent_database):
        with pytest.raises(ConsistencyError):
            fpd_consistency(consistent_database, ["C = A + B"])

    def test_fd_consistency_entry_point(self, consistent_database):
        result = fd_consistency(consistent_database, parse_fd_set(["A -> B"]))
        assert result.consistent
        assert all(fd.is_satisfied_by(result.weak_instance) for fd in result.fds)


class TestTheorem12PdConsistency:
    def test_single_relation_fd_style(self):
        good = Database.single(Relation.from_strings("R", "AB", ["a1.b1", "a2.b2"]))
        bad = Database.single(Relation.from_strings("R", "AB", ["a1.b1", "a1.b2"]))
        assert is_pd_consistent(good, ["A = A*B"])
        assert not is_pd_consistent(bad, ["A = A*B"])

    def test_general_pd_with_sum(self, consistent_database):
        assert is_pd_consistent(consistent_database, ["C = A + B"]) in (True, False)  # smoke: runs
        # A concrete inconsistent case: two C values forced into one A+B component.
        database = Database(
            [
                Relation.from_strings("R", "AB", ["a1.b1"]),
                Relation.from_strings("S", "BC", ["b1.c1", "b1.c2"]),
            ]
        )
        assert not is_pd_consistent(database, ["C = A + B"])

    def test_cross_relation_fd_propagation(self, inconsistent_database):
        assert not is_pd_consistent(inconsistent_database, ["A = A*B"])
        assert is_pd_consistent(inconsistent_database, ["B = B*A"])

    def test_result_carries_normalization_and_witness(self, consistent_database):
        result = pd_consistency(consistent_database, ["C = A + B", "A = A*B"])
        assert result.consistent
        assert result.weak_instance is not None
        assert is_weak_instance(result.weak_instance, consistent_database)
        assert all(fd.is_satisfied_by(result.weak_instance) for fd in result.normalized.fds)

    def test_agrees_with_fpd_route_on_fpd_sets(self, consistent_database, inconsistent_database):
        for database in (consistent_database, inconsistent_database):
            for E in (["A = A*B"], ["A = A*B", "B = B*C"], ["C = C*A"]):
                assert is_pd_consistent(database, E) == is_fpd_consistent(database, E)

    def test_empty_dependency_set_always_consistent(self, consistent_database):
        assert is_pd_consistent(consistent_database, [])


class TestLemma121Repair:
    def test_violations_detected_and_repaired(self):
        relation = Relation.from_strings("w", "ABC", ["a1.b1.c1", "a2.b2.c1"])
        constraint = SumConstraint("C", "A", "B")
        violations = sum_constraint_violations(relation, constraint)
        assert len(violations) == 1
        from repro.consistency.normalization import normalize_dependencies

        normalized = normalize_dependencies([])  # no FDs: closures are singletons
        # normalize_dependencies requires a non-empty list to be meaningful here;
        # craft a minimal NormalizedDependencies by hand instead.
        normalized.sum_constraints = [constraint]
        repaired, added = repair_sum_constraints_once(relation, normalized)
        assert added == 1
        assert not sum_constraint_violations(repaired, constraint)

    def test_no_violations_no_tuples_added(self):
        relation = Relation.from_strings("w", "ABC", ["a1.b1.c1", "a1.b2.c1"])
        constraint = SumConstraint("C", "A", "B")
        assert sum_constraint_violations(relation, constraint) == []


class TestTheorem7ExplicitWitness:
    def test_hand_built_weak_instance_accepted(self):
        database = Database(
            [Relation.from_strings("R", "AB", ["a1.b1"]), Relation.from_strings("S", "BC", ["b1.c1"])]
        )
        candidate = Relation.from_strings("w", "ABC", ["a1.b1.c1"])
        assert consistency_with_explicit_weak_instance(database, ["A = A*B", "C = A + B"], candidate)

    def test_hand_built_weak_instance_rejected_when_pd_fails(self):
        database = Database([Relation.from_strings("R", "AB", ["a1.b1"])])
        candidate = Relation.from_strings("w", "ABC", ["a1.b1.c1", "a1.b2.c2"])
        # candidate is a weak instance but violates A = A*B.
        assert not consistency_with_explicit_weak_instance(database, ["A = A*B"], candidate)


class TestAmortizedChaseEngine:
    def test_pd_consistency_with_prebuilt_engine(self):
        constraints = ["A = A*B", "B = B*C", "D = A + B"]
        engine = pd_chase_engine(constraints)
        databases = [
            Database(
                [
                    Relation.from_strings("R", "AB", ["a1.b1"]),
                    Relation.from_strings("S", "BC", ["b1.c1"]),
                ]
            ),
            Database([Relation.from_strings("R", "AB", ["a1.b1", "a1.b2"])]),
        ]
        for database in databases:
            amortized = pd_consistency(database, constraints, engine=engine)
            one_shot = pd_consistency(database, constraints)
            assert amortized.consistent == one_shot.consistent
            assert amortized.weak_instance == one_shot.weak_instance

    def test_pd_consistency_many_matches_per_database(self):
        constraints = ["A = A*B", "B = B*C"]
        databases = [
            Database([Relation.from_strings("R", "AB", ["a1.b1"])]),
            Database([Relation.from_strings("R", "AB", ["a1.b1", "a1.b2"])]),
        ]
        batched = pd_consistency_many(databases, constraints)
        assert [r.consistent for r in batched] == [
            pd_consistency(db, constraints).consistent for db in databases
        ]
        assert [r.weak_instance for r in batched] == [
            pd_consistency(db, constraints).weak_instance for db in databases
        ]

    def test_fd_consistency_with_prebuilt_engine(self):
        from repro.relational.chase_engine import ChaseEngine

        fds = parse_fd_set(["A -> B"])
        database = Database([Relation.from_strings("R", "AB", ["a1.b1", "a1.b2"])])
        assert not fd_consistency(database, fds, engine=ChaseEngine(fds)).consistent
        assert not fd_consistency(database, fds).consistent
