"""Cooperative deadlines: scope stack semantics and the kernel check hooks."""

import time

import pytest

from repro.consistency.cad import cad_consistency
from repro.deadline import DeadlineScope, active_deadlines, check_deadline, deadline_scope
from repro.errors import DeadlineExceeded, ReproError
from repro.lattice.quotient import finite_counterexample
from repro.relational.chase_engine import chase_database_indexed
from repro.relational.database import Database
from repro.relational.functional_dependencies import parse_fd_set
from repro.relational.relations import Relation
from repro.sat.nae3sat import nae_backtracking
from repro.workloads.random_formulas import random_3cnf


class TestScopeSemantics:
    def test_no_scope_is_a_no_op(self):
        check_deadline()  # must not raise outside any scope
        assert active_deadlines() == ()

    def test_none_budget_yields_none_and_pushes_nothing(self):
        with deadline_scope(None) as scope:
            assert scope is None
            assert active_deadlines() == ()
            check_deadline()

    def test_unexpired_scope_does_not_raise(self):
        with deadline_scope(60_000.0) as scope:
            assert isinstance(scope, DeadlineScope)
            assert active_deadlines() == (scope,)
            assert scope.remaining_ms() > 0
            assert not scope.expired()
            check_deadline()
        assert active_deadlines() == ()

    def test_expired_scope_raises_with_its_own_token(self):
        with deadline_scope(0.0) as scope:
            assert scope.expired()
            with pytest.raises(DeadlineExceeded) as info:
                check_deadline()
        assert info.value.scope is scope
        assert "deadline of 0 ms exceeded" in str(info.value)
        assert isinstance(info.value, ReproError)

    def test_scope_pops_even_after_expiry(self):
        with pytest.raises(DeadlineExceeded):
            with deadline_scope(0.0):
                check_deadline()
        assert active_deadlines() == ()
        check_deadline()

    def test_nested_scopes_report_earliest_expired(self):
        # The outer scope expires first on the wall clock; when both have
        # expired, the exception must carry the outer (earlier) token so the
        # enclosing handler — not the inner request — claims the expiry.
        with deadline_scope(0.0) as outer:
            time.sleep(0.002)
            with deadline_scope(0.5) as inner:
                time.sleep(0.002)
                assert outer.expired() and inner.expired()
                with pytest.raises(DeadlineExceeded) as info:
                    check_deadline()
        assert info.value.scope is outer

    def test_inner_expiry_leaves_outer_scope_usable(self):
        with deadline_scope(60_000.0) as outer:
            with deadline_scope(0.0) as inner:
                with pytest.raises(DeadlineExceeded) as info:
                    check_deadline()
            assert info.value.scope is inner
            check_deadline()  # outer budget still healthy
            assert active_deadlines() == (outer,)


class TestKernelHooks:
    """Every instrumented kernel aborts promptly under a pre-expired budget."""

    def test_finite_counterexample_honors_deadline(self):
        with deadline_scope(0.0):
            with pytest.raises(DeadlineExceeded):
                finite_counterexample(["A = A*B"], "C = C*D")

    def test_cad_consistency_honors_deadline(self):
        database = Database(
            [
                Relation.from_strings("R", "AB", ["a1.b1"]),
                Relation.from_strings("S", "AC", ["a1.c1"]),
            ]
        )
        with deadline_scope(0.0):
            with pytest.raises(DeadlineExceeded):
                cad_consistency(database, parse_fd_set(["A -> B"]))

    def test_nae_backtracking_honors_deadline(self):
        formula = random_3cnf(variable_count=8, clause_count=20, seed=5)
        with deadline_scope(0.0):
            with pytest.raises(DeadlineExceeded):
                nae_backtracking(formula)

    def test_chase_honors_deadline(self):
        database = Database.single(
            Relation.from_strings("R", "ABC", ["a1.b1.c1", "a1.b2.c2", "a2.b2.c3"])
        )
        with deadline_scope(0.0):
            with pytest.raises(DeadlineExceeded):
                chase_database_indexed(database, parse_fd_set(["A -> B", "B -> C"]))

    def test_kernels_run_normally_under_generous_budget(self):
        with deadline_scope(60_000.0):
            assert finite_counterexample(["A = A*B"], "A = A*B") is None
            formula = random_3cnf(variable_count=4, clause_count=6, seed=5)
            nae_backtracking(formula)
