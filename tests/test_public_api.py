"""Tests for the public API surface: everything re-exported from ``repro`` works."""

import importlib

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_importable(self):
        for subpackage in [
            "repro.relational",
            "repro.partitions",
            "repro.expressions",
            "repro.dependencies",
            "repro.lattice",
            "repro.implication",
            "repro.consistency",
            "repro.sat",
            "repro.graphs",
            "repro.workloads",
            "repro.figures",
            "repro.service",
        ]:
            module = importlib.import_module(subpackage)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{subpackage}.{name}"

    def test_exception_hierarchy(self):
        from repro.errors import (
            ConsistencyError,
            DependencyError,
            ExpressionError,
            LatticeError,
            PartitionError,
            ReproError,
            SchemaError,
        )

        for error in (
            SchemaError,
            DependencyError,
            ExpressionError,
            LatticeError,
            PartitionError,
            ConsistencyError,
        ):
            assert issubclass(error, ReproError)

    def test_readme_quickstart_snippet(self):
        # The snippet from README.md, kept executable here so it cannot rot.
        from repro import (
            Database,
            FunctionalDependency,
            Relation,
            canonical_interpretation,
            pd_consistency,
            pd_implies,
            relation_satisfies_pd,
        )

        r = Relation.from_strings("r", "ABC", ["a.b.c", "a.b.c2", "a2.b2.c"])
        fd = FunctionalDependency("A", "B")
        assert fd.is_satisfied_by(r)
        assert relation_satisfies_pd(r, "A = A*B")
        assert not relation_satisfies_pd(r, "C = A + B")
        assert pd_implies(["A = A*B", "B = B*C"], "A = A*C")
        assert pd_implies(["C = A + B"], "A = A*C")
        interpretation = canonical_interpretation(r)
        assert interpretation.meaning("A").block_count() == 2
        db = Database(
            [
                Relation.from_strings("R", "AB", ["a1.b1"]),
                Relation.from_strings("S", "BC", ["b1.c1"]),
            ]
        )
        assert pd_consistency(db, ["A = A*B", "B = B*C"]).consistent
