"""Tests for repro.relational.functional_dependencies."""

import pytest

from repro.errors import DependencyError
from repro.relational.attributes import AttributeSet
from repro.relational.functional_dependencies import (
    FunctionalDependency,
    candidate_keys,
    closure,
    equivalent,
    implies,
    minimal_cover,
    parse_fd_set,
    project_fds,
)
from repro.relational.relations import Relation


class TestFdBasics:
    def test_parse(self):
        fd = FunctionalDependency.parse("AB -> C")
        assert fd.lhs == AttributeSet("AB") and fd.rhs == AttributeSet("C")

    def test_parse_unicode_arrow(self):
        assert FunctionalDependency.parse("A→B") == FunctionalDependency("A", "B")

    def test_parse_missing_arrow(self):
        with pytest.raises(DependencyError):
            FunctionalDependency.parse("AB C")

    def test_empty_sides_rejected(self):
        with pytest.raises(DependencyError):
            FunctionalDependency("", "A")
        with pytest.raises(DependencyError):
            FunctionalDependency("A", [])

    def test_trivial(self):
        assert FunctionalDependency("AB", "A").is_trivial()
        assert not FunctionalDependency("A", "B").is_trivial()

    def test_decompose(self):
        parts = FunctionalDependency("A", "BC").decompose()
        assert FunctionalDependency("A", "B") in parts and FunctionalDependency("A", "C") in parts

    def test_equality_and_hash(self):
        assert FunctionalDependency("AB", "C") == FunctionalDependency("BA", "C")
        assert hash(FunctionalDependency("AB", "C")) == hash(FunctionalDependency("BA", "C"))


class TestSatisfaction:
    def test_satisfied(self):
        relation = Relation.from_strings("r", "AB", ["a1.b1", "a2.b1", "a1.b1"])
        assert FunctionalDependency("A", "B").is_satisfied_by(relation)

    def test_violated(self):
        relation = Relation.from_strings("r", "AB", ["a1.b1", "a1.b2"])
        fd = FunctionalDependency("A", "B")
        assert not fd.is_satisfied_by(relation)
        assert len(list(fd.violating_pairs(relation))) == 1

    def test_missing_attributes_raise(self):
        relation = Relation.from_strings("r", "AB", ["a.b"])
        with pytest.raises(DependencyError):
            FunctionalDependency("A", "C").is_satisfied_by(relation)

    def test_empty_relation_satisfies_everything(self):
        from repro.relational.schema import RelationScheme

        empty = Relation(RelationScheme("r", "AB"), [])
        assert FunctionalDependency("A", "B").is_satisfied_by(empty)


class TestClosureAndImplication:
    def test_transitive_closure(self):
        fds = parse_fd_set(["A -> B", "B -> C", "C -> D"])
        assert closure("A", fds) == AttributeSet("ABCD")

    def test_closure_requires_full_lhs(self):
        fds = parse_fd_set(["AB -> C"])
        assert closure("A", fds) == AttributeSet("A")
        assert closure("AB", fds) == AttributeSet("ABC")

    def test_implies(self):
        fds = parse_fd_set(["A -> B", "B -> C"])
        assert implies(fds, FunctionalDependency("A", "C"))
        assert not implies(fds, FunctionalDependency("C", "A"))

    def test_implies_trivial(self):
        assert implies([], FunctionalDependency("AB", "A"))

    def test_equivalent_sets(self):
        first = parse_fd_set(["A -> BC"])
        second = parse_fd_set(["A -> B", "A -> C"])
        assert equivalent(first, second)
        assert not equivalent(first, parse_fd_set(["A -> B"]))

    def test_closure_with_compound_lhs_chain(self):
        fds = parse_fd_set(["A -> B", "BC -> D", "D -> E"])
        assert closure("AC", fds) == AttributeSet("ABCDE")


class TestDesignTheoryToolkit:
    def test_minimal_cover_is_equivalent_and_singleton_rhs(self):
        fds = parse_fd_set(["A -> BC", "B -> C", "AB -> C"])
        cover = minimal_cover(fds)
        assert equivalent(fds, cover)
        assert all(len(fd.rhs) == 1 for fd in cover)

    def test_minimal_cover_removes_redundant_fd(self):
        fds = parse_fd_set(["A -> B", "B -> C", "A -> C"])
        cover = minimal_cover(fds)
        assert FunctionalDependency("A", "C") not in cover

    def test_minimal_cover_removes_extraneous_lhs_attribute(self):
        fds = parse_fd_set(["A -> B", "AB -> C"])
        cover = minimal_cover(fds)
        assert FunctionalDependency("A", "C") in cover

    def test_candidate_keys_simple(self):
        fds = parse_fd_set(["A -> B", "B -> C"])
        keys = candidate_keys("ABC", fds)
        assert keys == [AttributeSet("A")]

    def test_candidate_keys_multiple(self):
        fds = parse_fd_set(["A -> BC", "BC -> A"])
        keys = candidate_keys("ABC", fds)
        assert AttributeSet("A") in keys and AttributeSet("BC") in keys

    def test_project_fds_keeps_implied_dependencies(self):
        fds = parse_fd_set(["A -> B", "B -> C"])
        projected = project_fds(fds, "AC")
        assert implies(projected, FunctionalDependency("A", "C"))
