"""Tests for repro.graphs: the Example e encoding, connectivity PD, Theorem 4 family."""

import networkx as nx
import pytest

from repro.errors import SchemaError
from repro.graphs.connectivity import (
    component_labels_from_relation,
    components_by_partition_sum,
    connectivity_pd,
    number_of_components,
    satisfies_connectivity_pd,
)
from repro.graphs.encoding import (
    connected_components,
    graph_to_relation,
    graph_to_relation_with_labels,
    relation_to_graph,
)
from repro.graphs.families import (
    cycle_graph,
    disjoint_cliques,
    mislabeled_path_relation,
    path_graph,
    path_relation,
    random_graph,
    theorem4_designated_tuples,
    theorem4_path_relation,
)
from repro.relational.tuples import row_from_string


class TestEncoding:
    def test_edge_produces_four_tuples(self):
        relation = graph_to_relation([1, 2], [{1, 2}])
        assert len(relation) == 4  # ab, ba, aa, bb (all with the same component)
        assert relation.column("C") == {"c1"}

    def test_isolated_vertices_get_diagonal_tuples(self):
        relation = graph_to_relation([1, 2], [])
        assert len(relation) == 2
        assert relation.column("C") == {"c1", "c2"}

    def test_roundtrip_graph(self):
        vertices, edges = cycle_graph(4)
        relation = graph_to_relation(vertices, edges)
        back_vertices, back_edges = relation_to_graph(relation)
        assert len(back_vertices) == 4
        assert len(back_edges) == 4

    def test_labels_must_agree_on_edges(self):
        with pytest.raises(SchemaError):
            graph_to_relation_with_labels([1, 2], [{1, 2}], {1: "x", 2: "y"})

    def test_unknown_vertex_in_edge_rejected(self):
        with pytest.raises(SchemaError):
            graph_to_relation([1], [{1, 9}])

    def test_connected_components_against_networkx(self):
        vertices, edges = random_graph(12, 0.2, seed=5)
        ours = connected_components(vertices, edges)
        graph = nx.Graph()
        graph.add_nodes_from(vertices)
        graph.add_edges_from(tuple(edge) for edge in edges if len(edge) == 2)
        theirs = list(nx.connected_components(graph))
        assert len(set(ours.values())) == len(theirs)
        for component in theirs:
            assert len({ours[v] for v in component}) == 1


class TestConnectivityPd:
    def test_correctly_labelled_graphs_satisfy_c_equals_a_plus_b(self):
        for vertices, edges in [path_graph(4), cycle_graph(5), disjoint_cliques(3, 3)]:
            relation = graph_to_relation(vertices, edges)
            assert satisfies_connectivity_pd(relation, method="canonical")
            assert satisfies_connectivity_pd(relation, method="direct")
            assert satisfies_connectivity_pd(relation, method="order")

    def test_mislabeled_graph_violates_equality_but_not_order(self):
        relation = mislabeled_path_relation(4)
        assert not satisfies_connectivity_pd(relation, method="canonical")
        assert not satisfies_connectivity_pd(relation, method="direct")
        assert satisfies_connectivity_pd(relation, method="order")

    def test_methods_agree(self):
        for relation in [path_relation(3), mislabeled_path_relation(3), theorem4_path_relation(4)]:
            assert satisfies_connectivity_pd(relation, "canonical") == satisfies_connectivity_pd(
                relation, "direct"
            )

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            satisfies_connectivity_pd(path_relation(2), method="???")

    def test_components_by_partition_sum_counts(self):
        relation = graph_to_relation(*disjoint_cliques(3, 2))
        assert components_by_partition_sum(relation).block_count() == 3

    def test_component_labels_recomputed(self):
        relation = mislabeled_path_relation(3)
        labels = component_labels_from_relation(relation)
        assert len(set(labels.values())) == 1  # the path is in fact connected

    def test_number_of_components(self):
        vertices, edges = disjoint_cliques(4, 3)
        assert number_of_components(vertices, edges) == 4

    def test_connectivity_pd_shape(self):
        pd = connectivity_pd()
        assert str(pd) == "C = A + B"


class TestTheorem4Family:
    def test_path_relation_satisfies_connectivity(self):
        for i in (2, 4, 8):
            relation = theorem4_path_relation(i)
            assert satisfies_connectivity_pd(relation, method="direct")

    def test_designated_tuples_present_and_agree_on_c(self):
        relation = theorem4_path_relation(6)
        first, last = theorem4_designated_tuples(6)
        rows = set(relation.rows)
        assert row_from_string("ABC", first) in rows
        assert row_from_string("ABC", last) in rows

    def test_chain_length_grows_with_i(self):
        # The designated tuples are connected, but removing any middle tuple
        # disconnects them — i.e. the chain really needs all intermediate tuples.
        i = 6
        relation = theorem4_path_relation(i)
        first, last = (row_from_string("ABC", t) for t in theorem4_designated_tuples(i))
        full = components_by_partition_sum(relation)
        rows = relation.sorted_rows()
        index = {row: k + 1 for k, row in enumerate(rows)}
        assert full.together(index[first], index[last])
        from repro.relational.relations import Relation

        middle = [row for row in rows if row not in (first, last)][len(rows) // 2]
        shrunk = Relation(relation.scheme, set(relation.rows) - {middle})
        shrunk_components = components_by_partition_sum(shrunk)
        shrunk_rows = shrunk.sorted_rows()
        shrunk_index = {row: k + 1 for k, row in enumerate(shrunk_rows)}
        assert not shrunk_components.together(shrunk_index[first], shrunk_index[last])

    def test_odd_or_small_i_rejected(self):
        with pytest.raises(SchemaError):
            theorem4_path_relation(3)
        with pytest.raises(SchemaError):
            theorem4_path_relation(0)
