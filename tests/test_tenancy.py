"""Multi-tenant keyspaces: wire v3, tenant isolation, the shared cache, and the ring.

The tenancy invariants PR 9 pins:

* wire version 3 carries an optional ``tenant`` field; older envelopes
  cannot smuggle one in, and pre-v3 payloads decode as the default tenant;
* ``tenant`` stays inside :func:`request_cache_key`, so no cache tier can
  serve one tenant's answer to another;
* per-tenant Γ is isolated — growing tenant A's theory invalidates only A's
  Γ-dependent result entries (pinned by ``cache_info`` counters, not vibes);
* snapshots round-trip the whole tenant keyspace byte-identically;
* the parent-side :class:`SharedResultCache` and :class:`ConsistentHashRing`
  behave: LRU accounting, tenant-scoped invalidation, deterministic and
  balanced shard assignment;
* the 2-shard executor answers repeats parent-side, byte-identical to the
  cacheless path, and the server's stats/health expose the tier rates.
"""

import asyncio
import json

import pytest

from repro.dependencies.pd import PartitionDependency
from repro.errors import ServiceError
from repro.service.config import ServiceConfig
from repro.service.executor import ShardExecutor
from repro.service.result_cache import ConsistentHashRing, SharedResultCache
from repro.service.server import QueryServer
from repro.service.session import Session
from repro.service.snapshot import dump_snapshot, restore_session
from repro.service.wire import (
    QueryRequest,
    QueryResult,
    decode_request,
    dump_request_line,
    encode_request,
    load_request_line,
    request_cache_key,
)

GAMMA = ["A = A*B", "B = B*C"]


def _pd(text: str) -> PartitionDependency:
    return PartitionDependency.parse(text)


def _implies(text: str, tenant=None, id=None) -> QueryRequest:
    return QueryRequest(kind="implies", id=id, tenant=tenant, query=_pd(text))


class TestWireV3Tenant:
    def test_tenant_round_trips_at_version_3(self):
        request = _implies("A = A*C", tenant="acme", id="q1")
        payload = encode_request(request)
        assert payload["v"] == 3
        assert payload["tenant"] == "acme"
        assert decode_request(payload) == request
        assert load_request_line(dump_request_line(request)) == request

    def test_default_tenant_is_omitted_from_the_envelope(self):
        payload = encode_request(_implies("A = A*C"))
        assert "tenant" not in payload

    def test_pre_v3_payloads_decode_as_the_default_tenant(self):
        for version in (1, 2):
            payload = {"v": version, "kind": "implies", "query": "A = A*C"}
            assert decode_request(payload).tenant is None

    def test_old_envelopes_cannot_carry_a_tenant(self):
        for version in (1, 2):
            payload = {"v": version, "kind": "implies", "query": "A = A*C", "tenant": "t"}
            with pytest.raises(ServiceError, match="wire version 3"):
                decode_request(payload)

    def test_invalid_tenants_are_rejected(self):
        for bad in ("", 7, ["t"]):
            with pytest.raises(ServiceError, match="tenant"):
                encode_request(QueryRequest(kind="implies", tenant=bad, query=_pd("A = A*C")))

    def test_tenant_stays_in_the_cache_key(self):
        default = request_cache_key(_implies("A = A*C", id="x"))
        acme = request_cache_key(_implies("A = A*C", tenant="acme", id="y"))
        globex = request_cache_key(_implies("A = A*C", tenant="globex"))
        assert len({default, acme, globex}) == 3
        # ...while the id never is: same question, same slot.
        assert request_cache_key(_implies("A = A*C", tenant="acme", id="z")) == acme


class TestTenantKeyspaces:
    def test_new_tenants_start_with_an_empty_gamma(self):
        session = Session(GAMMA)
        assert session.execute(_implies("A = A*C")).value == {"implied": True}
        # Tenant "acme" owns its own Γ, which starts empty: nothing non-trivial holds.
        assert session.execute(_implies("A = A*C", tenant="acme")).value == {"implied": False}
        assert session.dependencies_for("acme") == []
        assert session.dependencies_for(None) == [_pd(t) for t in GAMMA]

    def test_tenant_gammas_grow_independently(self):
        session = Session([])
        session.add_dependencies(["A = A*B"], tenant="acme")
        session.add_dependencies(["B = B*C"], tenant="globex")
        assert session.execute(_implies("A = A*B", tenant="acme")).value == {"implied": True}
        assert session.execute(_implies("A = A*B", tenant="globex")).value == {"implied": False}
        assert session.execute(_implies("A = A*B")).value == {"implied": False}
        assert session.tenant_names() == [None, "acme", "globex"]

    def test_growing_one_tenant_invalidates_only_its_entries(self):
        session = Session([])
        a = _implies("A = A*D", tenant="acme")
        b = _implies("A = A*D", tenant="globex")
        for request in (a, b):
            assert session.execute(request).value == {"implied": False}
        # Both answers are warm now; pin that with the per-tenant counters.
        session.execute(a), session.execute(b)
        per_tenant = session.cache_info()["per_tenant"]
        assert per_tenant["acme"]["hits"] == 1 and per_tenant["globex"]["hits"] == 1

        session.add_dependencies(["A = A*D"], tenant="acme")
        assert session.generation_for("acme") == 1
        assert session.generation_for("globex") == 0
        # acme recomputes under its grown Γ; globex still answers from cache.
        assert session.execute(a).value == {"implied": True}
        assert session.execute(b).value == {"implied": False}
        per_tenant = session.cache_info()["per_tenant"]
        assert per_tenant["globex"]["hits"] == 2  # B's entry survived
        assert per_tenant["acme"]["misses"] == 2  # A's entry did not

    def test_explicit_dependency_requests_are_gamma_independent(self):
        session = Session([])
        request = QueryRequest(
            kind="implies", tenant="acme", dependencies=(_pd("A = A*B"),), query=_pd("A = A*B")
        )
        assert session.execute(request).value == {"implied": True}
        session.add_dependencies(["B = B*C"], tenant="acme")
        # Explicit-Γ entries never depend on the tenant's session Γ: still cached.
        session.execute(request)
        assert session.cache_info()["per_tenant"]["acme"]["hits"] == 1


class TestContextCacheCounters:
    def test_foreign_context_hits_misses_and_evictions_are_counted(self):
        session = Session(GAMMA, foreign_context_limit=2)
        deps = [(_pd(f"A = A*{name}"),) for name in ("C", "D", "E")]
        requests = [
            QueryRequest(kind="implies", dependencies=d, query=_pd("A = A*B")) for d in deps
        ]
        for request in requests:  # three distinct foreign theories, limit 2
            session.execute(request)
        # A *different* question over the warm theory (a repeat of the same
        # request would be served by the result cache, never reaching the
        # context LRU).
        session.execute(
            QueryRequest(kind="implies", dependencies=deps[-1], query=_pd("B = B*C"))
        )
        info = session.cache_info()["contexts"]
        assert info["misses"] == 3
        assert info["evictions"] == 1
        assert info["hits"] >= 1
        assert info["size"] <= info["maxsize"] == 2

    def test_create_false_probes_without_inserting_or_evicting(self):
        session = Session(GAMMA, foreign_context_limit=2)
        request = QueryRequest(
            kind="implies", dependencies=(_pd("A = A*Z"),), query=_pd("A = A*Z")
        )
        before = session.cache_info()["contexts"]
        assert session.context_for(request, create=False) is None
        after = session.cache_info()["contexts"]
        assert after["size"] == before["size"] == 0
        assert after["evictions"] == before["evictions"]


class TestSnapshotTenantRoundTrip:
    def _warm_session(self) -> Session:
        session = Session(GAMMA)
        session.add_dependencies(["C = C*D"], tenant="acme")
        session.add_dependencies(["D = D*E"], tenant="globex")
        session.execute(_implies("A = A*C"))
        session.execute(_implies("C = C*D", tenant="acme"))
        session.execute(_implies("C = C*D", tenant="globex"))
        return session

    def test_export_restore_export_is_byte_identical(self):
        text = dump_snapshot(self._warm_session())
        assert dump_snapshot(restore_session(text)) == text

    def test_restored_tenants_answer_like_the_original(self):
        session = self._warm_session()
        restored = restore_session(dump_snapshot(session))
        assert restored.tenant_names() == session.tenant_names()
        for tenant in (None, "acme", "globex"):
            assert restored.dependencies_for(tenant) == session.dependencies_for(tenant)
            assert restored.generation_for(tenant) == session.generation_for(tenant)
            assert (
                restored.execute(_implies("C = C*D", tenant=tenant)).value
                == session.execute(_implies("C = C*D", tenant=tenant)).value
            )

    def test_restored_result_entries_keep_their_tenant(self):
        restored = restore_session(dump_snapshot(self._warm_session()))
        restored.add_dependencies(["E = E*F"], tenant="acme")  # invalidates acme only
        restored.execute(_implies("C = C*D", tenant="globex"))
        assert restored.cache_info()["per_tenant"]["globex"]["hits"] == 1


class TestSharedResultCache:
    def _result(self, value=True) -> QueryResult:
        return QueryResult(kind="implies", ok=True, value={"implied": value})

    def test_hits_restamp_the_caller_id(self):
        cache = SharedResultCache(maxsize=4)
        cache.store("k", self._result(), tenant="acme")
        hit = cache.lookup("k", "q42", tenant="acme")
        assert hit is not None and hit.id == "q42" and hit.cached
        assert cache.lookup("other", None) is None
        info = cache.info()
        assert info["hits"] == 1 and info["misses"] == 1 and info["stores"] == 1
        assert info["per_tenant"]["acme"] == {"hits": 1, "misses": 0}

    def test_lru_eviction_is_counted(self):
        cache = SharedResultCache(maxsize=2)
        for key in ("a", "b", "c"):
            cache.store(key, self._result())
        assert len(cache) == 2
        assert cache.info()["evictions"] == 1
        assert cache.lookup("a", None) is None  # the oldest fell out

    def test_error_results_are_never_stored(self):
        cache = SharedResultCache(maxsize=4)
        cache.store("k", QueryResult(kind="implies", ok=False, error={"type": "X", "message": "m"}))
        assert len(cache) == 0

    def test_invalidate_tenant_scopes_to_gamma_dependent_entries(self):
        cache = SharedResultCache(maxsize=8)
        cache.store("a1", self._result(), tenant="acme", uses_tenant_gamma=True)
        cache.store("a2", self._result(), tenant="acme", uses_tenant_gamma=False)
        cache.store("g1", self._result(), tenant="globex", uses_tenant_gamma=True)
        assert cache.invalidate_tenant("acme") == 1
        assert cache.lookup("a1", None, tenant="acme") is None
        assert cache.lookup("a2", None, tenant="acme") is not None
        assert cache.lookup("g1", None, tenant="globex") is not None

    def test_size_zero_disables_the_tier(self):
        cache = SharedResultCache(maxsize=0)
        assert not cache.enabled
        cache.store("k", self._result())
        assert len(cache) == 0 and cache.lookup("k", None) is None


class TestConsistentHashRing:
    def test_assignment_is_deterministic_and_total(self):
        ring = ConsistentHashRing(shards=3)
        keys = [f"key-{i}" for i in range(300)]
        owners = [ring.shard_for(key) for key in keys]
        assert owners == [ConsistentHashRing(shards=3).shard_for(key) for key in keys]
        assert set(owners) == {0, 1, 2}

    def test_load_is_roughly_balanced(self):
        ring = ConsistentHashRing(shards=2)
        owners = [ring.shard_for(f"key-{i}") for i in range(1000)]
        share = owners.count(0) / len(owners)
        assert 0.3 < share < 0.7

    def test_growing_the_ring_moves_few_keys(self):
        keys = [f"key-{i}" for i in range(1000)]
        before = ConsistentHashRing(shards=3)
        after = ConsistentHashRing(shards=4)
        moved = sum(
            1
            for key in keys
            if before.shard_for(key) != after.shard_for(key) and after.shard_for(key) != 3
        )
        # Consistent hashing's point: keys either stay put or move to the new
        # shard — cross-moves between surviving shards are rare.
        assert moved / len(keys) < 0.15

    def test_invalid_shapes_are_rejected(self):
        with pytest.raises(ServiceError):
            ConsistentHashRing(shards=0)


class TestExecutorSharedCache:
    @pytest.fixture(scope="class")
    def stream(self):
        requests = [
            _implies("A = A*C", tenant=f"t{i % 5}", id=f"q{i}") for i in range(20)
        ]
        return requests, [dump_request_line(r) for r in requests]

    def test_repeats_are_answered_parent_side_byte_identically(self, stream):
        requests, lines = stream
        with ShardExecutor(shards=2, shared_cache_size=0) as executor:
            expected = executor.execute_encoded(lines, requests=requests)
        with ShardExecutor(shards=2, shared_cache_size=64) as executor:
            first = executor.execute_encoded(lines, requests=requests)
            again = executor.execute_encoded(lines, requests=requests)
            info = executor.shared_cache_info()
        assert first == expected
        assert again == expected
        assert info["ring_shards"] == 2
        # Pass 1 probes all miss (the probe runs before any compute), every
        # reassembled line is published; pass 2 is answered entirely tier-0.
        assert info["size"] == 5  # 5 distinct (tenant, question) slots
        assert info["misses"] == len(requests)
        assert info["hits"] == len(requests)
        assert set(info["per_tenant"]) == {f"t{i}" for i in range(5)}

    def test_islands_mode_has_no_ring_and_no_tier0(self, stream):
        requests, lines = stream
        # One shard so the second pass deterministically reaches the worker
        # session that answered the first (intra-batch duplicates are
        # amortized by the batch closure, not counted as cache hits).
        with ShardExecutor(shards=1, shared_cache_size=0) as executor:
            executor.execute_encoded(lines, requests=requests)
            executor.execute_encoded(lines, requests=requests)
            info = executor.shared_cache_info()
            supervision = executor.supervision_stats()
        assert info["ring_shards"] == 0
        assert info["hits"] == 0 and info["misses"] == 0
        # Repeats still hit somewhere: the per-worker tier-2 sessions.
        assert supervision["worker_cache_hits"] == len(requests)

    def test_invalidate_tenant_reaches_the_shared_tier(self, stream):
        requests, lines = stream
        with ShardExecutor(shards=2, shared_cache_size=64) as executor:
            first = executor.execute_encoded(lines, requests=requests)
            assert executor.invalidate_tenant("t0") == 1
            # The dropped tenant recomputes; answers are still byte-identical.
            assert executor.execute_encoded(lines, requests=requests) == first
            assert executor.shared_cache_info()["size"] == 5  # t0 re-published

    def test_worker_cache_size_bounds_the_tier2_islands(self, stream):
        requests, lines = stream
        with ShardExecutor(shards=2, shared_cache_size=0, worker_cache_size=1) as executor:
            expected = executor.execute_encoded(lines, requests=requests)
            assert executor.execute_encoded(lines, requests=requests) == expected


class TestServerTenancyStats:
    def test_stats_and_health_expose_tier_and_tenant_rates(self):
        requests = [
            _implies("A = A*C", tenant="acme", id="a1"),
            _implies("A = A*C", tenant="acme", id="a2"),
            _implies("A = A*C", tenant="globex", id="g1"),
        ]
        lines = [dump_request_line(r) for r in requests]

        async def _converse(host, port, payload):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(("".join(line + "\n" for line in payload)).encode("utf-8"))
            await writer.drain()
            writer.write_eof()
            answers = [
                (await reader.readline()).decode("utf-8").rstrip("\n") for _ in payload
            ]
            writer.close()
            return answers

        async def scenario():
            # max_batch=1 closes a window per request, so the repeat reaches
            # the session's result cache instead of its window's batch closure.
            # Controls go on a second connection *after* every request is
            # answered — a control line snapshots stats the moment it is read.
            async with QueryServer(ServiceConfig(max_wait_ms=5.0, max_batch=1)) as server:
                await _converse(server.host, server.port, lines)
                return await _converse(
                    server.host, server.port, ['{"control":"stats"}', '{"control":"health"}']
                )

        stats_line, health_line = asyncio.run(asyncio.wait_for(scenario(), 60))
        cache = json.loads(stats_line)["stats"]["result_cache"]
        assert "session" in cache["tiers"]
        tier = cache["tiers"]["session"]
        assert tier["hits"] == 1 and tier["misses"] == 2
        assert tier["hit_rate"] == pytest.approx(1 / 3)
        acme, globex = cache["per_tenant"]["acme"], cache["per_tenant"]["globex"]
        assert acme["hits"] == 1 and acme["misses"] == 1
        assert globex["hits"] == 0 and globex["misses"] == 1
        health_cache = json.loads(health_line)["health"]["cache"]
        assert set(health_cache) >= {"session"}
