"""Cross-cutting property-based tests: dualities, monotonicity, and semantic invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.implication.alg import ImplicationEngine, pd_implies
from repro.implication.identities import identically_equal, identically_leq
from repro.lattice.core import FiniteLattice
from repro.lattice.oracle import (
    OracleFiniteLattice,
    oracle_is_distributive,
    oracle_is_modular,
)
from repro.lattice.partition_lattice import partition_lattice, set_partitions
from repro.lattice.properties import are_isomorphic, find_isomorphism, is_distributive, is_modular
from repro.partitions.canonical import canonical_interpretation
from repro.expressions.ast import attribute_set_expression
from repro.relational.attributes import AttributeSet
from repro.workloads.random_dependencies import random_pd_set

from tests.conftest import expressions, partitions_over, small_relations


class TestDuality:
    @given(expressions(max_depth=3))
    @settings(max_examples=60, deadline=None)
    def test_dual_is_an_involution(self, expression):
        assert expression.dual().dual() == expression

    @given(expressions(max_depth=2), expressions(max_depth=2))
    @settings(max_examples=60, deadline=None)
    def test_free_lattice_order_reverses_under_duality(self, left, right):
        # p ≤ q in the free lattice  iff  dual(q) ≤ dual(p): the duality principle.
        assert identically_leq(left, right) == identically_leq(right.dual(), left.dual())

    @given(expressions(max_depth=2), expressions(max_depth=2))
    @settings(max_examples=40, deadline=None)
    def test_identity_preserved_under_duality(self, left, right):
        assert identically_equal(left, right) == identically_equal(left.dual(), right.dual())


class TestPartitionMonotonicity:
    @given(partitions_over(), partitions_over(), partitions_over())
    @settings(max_examples=80, deadline=None)
    def test_product_and_sum_are_monotone(self, x, y, z):
        if x.refines(y):
            assert (x * z).refines(y * z)
            assert (x + z).refines(y + z)

    @given(partitions_over(), partitions_over())
    @settings(max_examples=60, deadline=None)
    def test_block_count_ordering(self, x, y):
        # Product refines both operands, sum is refined by both.
        assert (x * y).block_count() >= max(x.block_count(), y.block_count())
        assert (x + y).block_count() <= min(x.block_count(), y.block_count())


class TestCanonicalInterpretationInvariants:
    @given(small_relations())
    @settings(max_examples=40, deadline=None)
    def test_scheme_meaning_equals_attribute_set_expression(self, relation):
        interpretation = canonical_interpretation(relation)
        attrs = AttributeSet("ABC")
        assert interpretation.meaning_of_scheme(attrs) == interpretation.meaning(
            attribute_set_expression(attrs)
        )

    @given(small_relations())
    @settings(max_examples=40, deadline=None)
    def test_population_is_shared_and_covers_all_tuples(self, relation):
        interpretation = canonical_interpretation(relation)
        for attribute in "ABC":
            assert interpretation.population(attribute) == frozenset(range(1, len(relation) + 1))

    @given(small_relations())
    @settings(max_examples=40, deadline=None)
    def test_tuple_meanings_are_nonempty_and_pairwise_disjoint_on_products(self, relation):
        interpretation = canonical_interpretation(relation)
        meanings = [interpretation.meaning_of_tuple(row) for row in relation.sorted_rows()]
        assert all(meaning for meaning in meanings)


class TestPartitionLatticeProperties:
    """§2.2: Π_n is modular iff n ≤ 3 and distributive iff n ≤ 2 (kernel vs oracle)."""

    def _oracle(self, n: int) -> OracleFiniteLattice:
        return OracleFiniteLattice(
            list(set_partitions(range(n))),
            lambda x, y: x.product(y),
            lambda x, y: x.sum(y),
            validate=False,
        )

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_modularity_threshold(self, n):
        lattice = partition_lattice(range(n), validate=True)
        verdict = is_modular(lattice)
        assert verdict == (n <= 3)
        assert verdict == oracle_is_modular(self._oracle(n))

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_distributivity_threshold(self, n):
        lattice = partition_lattice(range(n), validate=True)
        verdict = is_distributive(lattice)
        assert verdict == (n <= 2)
        assert verdict == oracle_is_distributive(self._oracle(n))

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_sublattices_agree_with_oracle(self, seed):
        rng = random.Random(seed)
        pool = list(set_partitions(range(4)))
        generators = rng.sample(pool, rng.randint(2, 5))
        kernel = partition_lattice(range(4)).sublattice(generators)
        oracle = self._oracle(4).sublattice(generators)
        assert kernel.elements == oracle.elements
        assert is_modular(kernel) == oracle_is_modular(oracle)
        assert is_distributive(kernel) == oracle_is_distributive(oracle)

    def test_isomorphism_positive_and_negative_pair(self):
        # Π_3 is the diamond M3; the pentagon N5 has the same size but a
        # different shape.  Both verdicts must agree between the kernel and
        # the oracle representation of the same abstract lattices.
        m3_order = {("bot", t) for t in ["x", "y", "z", "top"]} | {
            ("x", "top"), ("y", "top"), ("z", "top")
        }
        n5_order = {
            ("bot", "a"), ("bot", "b"), ("bot", "c"), ("bot", "top"),
            ("a", "c"), ("a", "top"), ("b", "top"), ("c", "top"),
        }

        def leq_from(order):
            return lambda x, y: x == y or (x, y) in order

        pi3_kernel = partition_lattice(range(3), validate=True)
        pi3_oracle = self._oracle(3)
        m3_kernel = FiniteLattice.from_partial_order(
            ["bot", "x", "y", "z", "top"], leq_from(m3_order)
        )
        m3_oracle = OracleFiniteLattice.from_partial_order(
            ["bot", "x", "y", "z", "top"], leq_from(m3_order)
        )
        n5_kernel = FiniteLattice.from_partial_order(
            ["bot", "a", "b", "c", "top"], leq_from(n5_order)
        )
        assert are_isomorphic(pi3_kernel, m3_kernel)
        assert are_isomorphic(pi3_oracle, m3_oracle)
        assert are_isomorphic(pi3_kernel, m3_oracle)  # mixed representations
        assert not are_isomorphic(pi3_kernel, n5_kernel)
        assert not are_isomorphic(pi3_oracle, n5_kernel)
        mapping = find_isomorphism(m3_kernel, m3_oracle)
        assert mapping is not None and len(set(mapping.values())) == 5


class TestImplicationMonotonicity:
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_larger_e_implies_more(self, seed, extra_count):
        base = random_pd_set(3, 2, seed=seed, max_complexity=2)
        extra = random_pd_set(3, extra_count, seed=seed + 1, max_complexity=2)
        query = random_pd_set(3, 1, seed=seed + 2, max_complexity=2)[0]
        if pd_implies(base, query):
            assert pd_implies(base + extra, query)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_e_implies_its_own_members_and_their_reversals(self, seed):
        dependencies = random_pd_set(3, 3, seed=seed, max_complexity=2)
        engine = ImplicationEngine(dependencies)
        for pd in dependencies:
            assert engine.implies(pd)
            assert engine.implies(pd.reversed())
