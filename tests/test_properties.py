"""Cross-cutting property-based tests: dualities, monotonicity, and semantic invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.implication.alg import ImplicationEngine, pd_implies
from repro.implication.identities import identically_equal, identically_leq
from repro.partitions.canonical import canonical_interpretation
from repro.expressions.ast import attribute_set_expression
from repro.relational.attributes import AttributeSet
from repro.workloads.random_dependencies import random_pd_set

from tests.conftest import expressions, partitions_over, small_relations


class TestDuality:
    @given(expressions(max_depth=3))
    @settings(max_examples=60, deadline=None)
    def test_dual_is_an_involution(self, expression):
        assert expression.dual().dual() == expression

    @given(expressions(max_depth=2), expressions(max_depth=2))
    @settings(max_examples=60, deadline=None)
    def test_free_lattice_order_reverses_under_duality(self, left, right):
        # p ≤ q in the free lattice  iff  dual(q) ≤ dual(p): the duality principle.
        assert identically_leq(left, right) == identically_leq(right.dual(), left.dual())

    @given(expressions(max_depth=2), expressions(max_depth=2))
    @settings(max_examples=40, deadline=None)
    def test_identity_preserved_under_duality(self, left, right):
        assert identically_equal(left, right) == identically_equal(left.dual(), right.dual())


class TestPartitionMonotonicity:
    @given(partitions_over(), partitions_over(), partitions_over())
    @settings(max_examples=80, deadline=None)
    def test_product_and_sum_are_monotone(self, x, y, z):
        if x.refines(y):
            assert (x * z).refines(y * z)
            assert (x + z).refines(y + z)

    @given(partitions_over(), partitions_over())
    @settings(max_examples=60, deadline=None)
    def test_block_count_ordering(self, x, y):
        # Product refines both operands, sum is refined by both.
        assert (x * y).block_count() >= max(x.block_count(), y.block_count())
        assert (x + y).block_count() <= min(x.block_count(), y.block_count())


class TestCanonicalInterpretationInvariants:
    @given(small_relations())
    @settings(max_examples=40, deadline=None)
    def test_scheme_meaning_equals_attribute_set_expression(self, relation):
        interpretation = canonical_interpretation(relation)
        attrs = AttributeSet("ABC")
        assert interpretation.meaning_of_scheme(attrs) == interpretation.meaning(
            attribute_set_expression(attrs)
        )

    @given(small_relations())
    @settings(max_examples=40, deadline=None)
    def test_population_is_shared_and_covers_all_tuples(self, relation):
        interpretation = canonical_interpretation(relation)
        for attribute in "ABC":
            assert interpretation.population(attribute) == frozenset(range(1, len(relation) + 1))

    @given(small_relations())
    @settings(max_examples=40, deadline=None)
    def test_tuple_meanings_are_nonempty_and_pairwise_disjoint_on_products(self, relation):
        interpretation = canonical_interpretation(relation)
        meanings = [interpretation.meaning_of_tuple(row) for row in relation.sorted_rows()]
        assert all(meaning for meaning in meanings)


class TestImplicationMonotonicity:
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_larger_e_implies_more(self, seed, extra_count):
        base = random_pd_set(3, 2, seed=seed, max_complexity=2)
        extra = random_pd_set(3, extra_count, seed=seed + 1, max_complexity=2)
        query = random_pd_set(3, 1, seed=seed + 2, max_complexity=2)[0]
        if pd_implies(base, query):
            assert pd_implies(base + extra, query)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_e_implies_its_own_members_and_their_reversals(self, seed):
        dependencies = random_pd_set(3, 3, seed=seed, max_complexity=2)
        engine = ImplicationEngine(dependencies)
        for pd in dependencies:
            assert engine.implies(pd)
            assert engine.implies(pd.reversed())
