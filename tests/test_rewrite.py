"""Tests for repro.implication.rewrite — the RR rewrite system of Lemma 9.1."""

from repro.expressions.parser import parse_expression
from repro.implication.alg import pd_leq
from repro.implication.rewrite import (
    default_pool,
    find_rewrite_sequence,
    one_step_rewrites,
    rewrite_reachable,
)


class TestOneStepRewrites:
    def test_product_projects_to_factors(self):
        results = one_step_rewrites(parse_expression("A*B"), [], [])
        assert parse_expression("A") in results
        assert parse_expression("B") in results

    def test_sum_idempotence_collapse(self):
        results = one_step_rewrites(parse_expression("A + A"), [], [])
        assert parse_expression("A") in results

    def test_rule4_duplication(self):
        results = one_step_rewrites(parse_expression("A"), [], [])
        assert parse_expression("A * A") in results

    def test_rules_5_6_use_pool(self):
        pool = [parse_expression("B")]
        results = one_step_rewrites(parse_expression("A"), [], pool)
        assert parse_expression("A + B") in results
        assert parse_expression("B + A") in results

    def test_rule7_uses_equations(self):
        from repro.dependencies.pd import PartitionDependency

        equations = [PartitionDependency.parse("A = B*C")]
        results = one_step_rewrites(parse_expression("A"), equations, [])
        assert parse_expression("B*C") in results

    def test_rewrites_inside_subexpressions(self):
        results = one_step_rewrites(parse_expression("(A*B) + C"), [], [])
        assert parse_expression("A + C") in results


class TestRewriteSequences:
    def test_identity_needs_no_steps(self):
        sequence = find_rewrite_sequence("A", "A")
        assert sequence == [parse_expression("A")]

    def test_simple_leq_has_rewrite_proof(self):
        # A*B <=_id A: rewrite proof of length 1 (rule 2).
        assert rewrite_reachable("A*B", "A")

    def test_leq_with_equations(self):
        # With E = {A = A*B}: A <=_E B has a proof A -> A*B -> B.
        E = ["A = A*B"]
        sequence = find_rewrite_sequence("A", "B", E, max_steps=4)
        assert sequence is not None and len(sequence) <= 3
        assert pd_leq(E, "A", "B")  # and ALG agrees

    def test_absorption_rewrite(self):
        assert rewrite_reachable("A * (A + B)", "A", max_steps=3)
        assert rewrite_reachable("A", "A + (A * B)", max_steps=4)

    def test_sum_transitivity_chain(self):
        E = ["C = A + B"]
        # A <=_E C must have a bounded rewrite proof: A -> A + B -> ... -> C.
        assert rewrite_reachable("A", "C", E, max_steps=5)

    def test_unreachable_within_bounds_returns_false(self):
        assert not rewrite_reachable("A", "B", max_steps=3)

    def test_every_rewrite_step_is_sound_for_leq(self):
        # Each RR step p -> q is a sound <=_E inference; check on a generated proof.
        E = ["A = A*B", "B = B*C"]
        sequence = find_rewrite_sequence("A", "C", E, max_steps=5)
        assert sequence is not None
        for first, second in zip(sequence, sequence[1:]):
            assert pd_leq(E, first, second)

    def test_default_pool_contains_subexpressions(self):
        pool = default_pool("A*B", "C", ["C = A + B"])
        assert parse_expression("A") in pool and parse_expression("A + B") in pool
