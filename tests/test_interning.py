"""Interning invariants of the hash-consed expression AST.

Structural equality must coincide with object identity for every way of
building an expression — constructors, operator sugar, the parser, pickling,
copying — and the per-node caches (hash, attributes, complexity, size, dual)
must agree with recomputation from the structure.
"""

import copy
import pickle

from hypothesis import given, settings

from repro.expressions.ast import (
    Attr,
    Product,
    Sum,
    attr,
    attribute_set_expression,
    attrs,
    interned_counts,
    product_of,
    sum_of,
)
from repro.expressions.parser import parse_expression

from tests.conftest import expressions


class TestIdentityInterning:
    def test_attrs_intern_by_name(self):
        assert Attr("A") is Attr("A")
        assert attr("A") is Attr("A")
        assert Attr("A") is not Attr("B")

    def test_composites_intern_by_operands(self):
        a, b = attrs("A", "B")
        assert Product(a, b) is Product(a, b)
        assert Sum(a, b) is Sum(a, b)
        assert Product(a, b) is not Product(b, a)  # syntax, not semantics
        assert Product(a, b) is not Sum(a, b)

    def test_operator_sugar_interns(self):
        a, b, c = attrs("A", "B", "C")
        assert a * (b + c) is Product(a, Sum(b, c))
        assert (a * b) + c is Sum(Product(a, b), c)

    def test_parser_returns_interned_nodes(self):
        a, b, c = attrs("A", "B", "C")
        assert parse_expression("A * (B + C)") is a * (b + c)
        assert parse_expression("A*B*C") is product_of("ABC")
        assert parse_expression("A+B+C") is sum_of("ABC")
        assert attribute_set_expression("CAB") is product_of("ABC")

    def test_structural_equality_is_identity(self):
        left = parse_expression("(A + B) * (A + C)")
        right = Product(Sum(Attr("A"), Attr("B")), Sum(Attr("A"), Attr("C")))
        assert left == right
        assert left is right

    @given(expressions(max_depth=3), expressions(max_depth=3))
    @settings(max_examples=100, deadline=None)
    def test_equal_iff_identical(self, first, second):
        assert (first == second) == (first is second)

    def test_interned_counts_reports_live_nodes(self):
        expr = parse_expression("A * (B + C)")
        counts = interned_counts()
        assert counts["Attr"] >= 3
        assert counts["Product"] >= 1
        assert counts["Sum"] >= 1
        assert expr is not None  # keep the tree alive through the assertions


class TestRoundTrips:
    def test_pickle_reinterns(self):
        expr = parse_expression("(A*B) + (C * (A + D))")
        clone = pickle.loads(pickle.dumps(expr))
        assert clone is expr

    def test_pickle_attr(self):
        assert pickle.loads(pickle.dumps(Attr("Account"))) is Attr("Account")

    def test_deepcopy_and_copy_preserve_identity(self):
        expr = parse_expression("A * (B + C)")
        assert copy.copy(expr) is expr
        assert copy.deepcopy(expr) is expr

    @given(expressions(max_depth=3))
    @settings(max_examples=50, deadline=None)
    def test_pickle_round_trip_random(self, expr):
        assert pickle.loads(pickle.dumps(expr)) is expr


class TestCachedMetadata:
    def test_attributes_cached_and_shared(self):
        expr = parse_expression("A * (B + A)")
        assert expr.attributes() is expr.attributes()
        assert set(expr.attributes()) == {"A", "B"}

    def test_complexity_and_size_match_structure(self):
        expr = parse_expression("(A*B) + (C*D)")
        assert expr.complexity() == 3
        assert expr.size() == 7
        assert Attr("A").complexity() == 0
        assert Attr("A").size() == 1

    def test_dual_is_cached_involution(self):
        expr = parse_expression("A * (B + C)")
        dual = expr.dual()
        assert dual is parse_expression("A + B*C")
        assert dual.dual() is expr
        assert expr.dual() is dual  # cached, not recomputed
        assert Attr("A").dual() is Attr("A")

    def test_is_product_of_attributes_cached(self):
        assert parse_expression("A*B*C").is_product_of_attributes()
        assert not parse_expression("A*(B+C)").is_product_of_attributes()

    def test_hash_stable_across_instances(self):
        assert hash(parse_expression("A*B")) == hash(Product(Attr("A"), Attr("B")))
