"""Unit tests for the micro-batch window: triggers, backpressure, drain, accounting.

Everything here drives :class:`~repro.service.microbatch.MicroBatcher`
directly (no sockets) with controllable window executors, so the three
window-close triggers (size, timer, drain), both overload policies and the
latency accounting are each pinned deterministically.
"""

import asyncio
import threading

import pytest

from repro.dependencies.pd import PartitionDependency
from repro.errors import ServiceError
from repro.service.microbatch import MicroBatcher, percentile
from repro.service.session import Session
from repro.service.wire import QueryRequest, QueryResult

TRIVIAL_PD = PartitionDependency.parse("A = A")


def _request(number: int) -> QueryRequest:
    return QueryRequest(kind="implies", id=f"q{number}", dependencies=(), query=TRIVIAL_PD)


def _echo_executor(requests):
    """A trivial pipeline: answer each request with its own id."""
    return [
        QueryResult(kind=request.kind, ok=True, id=request.id, value={"echo": request.id})
        for request in requests
    ]


class GatedExecutor:
    """A window executor that blocks until released (runs on the worker thread)."""

    def __init__(self):
        self.gate = threading.Event()
        self.windows = []

    def __call__(self, requests):
        self.gate.wait(timeout=30)
        self.windows.append([request.id for request in requests])
        return _echo_executor(requests)


def run(coro):
    return asyncio.run(coro)


class TestWindowTriggers:
    def test_size_trigger_closes_without_waiting(self):
        async def scenario():
            # The timer is effectively infinite: only the size bound can close.
            async with MicroBatcher(_echo_executor, max_wait_ms=60_000, max_batch=3) as mb:
                tickets = [await mb.submit(_request(i)) for i in range(3)]
                results = await asyncio.wait_for(
                    asyncio.gather(*(t.result() for t in tickets)), timeout=5
                )
                return results, mb.stats

        results, stats = run(scenario())
        assert [r.value["echo"] for r in results] == ["q0", "q1", "q2"]
        assert stats.windows == 1
        assert stats.closed_by["size"] == 1
        assert stats.window_size_max == 3

    def test_timer_trigger_closes_partial_window(self):
        async def scenario():
            async with MicroBatcher(_echo_executor, max_wait_ms=30, max_batch=100) as mb:
                tickets = [await mb.submit(_request(i)) for i in range(2)]
                results = await asyncio.wait_for(
                    asyncio.gather(*(t.result() for t in tickets)), timeout=5
                )
                return results, mb.stats

        results, stats = run(scenario())
        assert all(r.ok for r in results)
        assert stats.closed_by["timer"] == 1
        assert stats.window_size_max == 2

    def test_backlog_coalesces_into_one_window(self):
        """Requests queued while a window executes all land in the next window."""
        executor = GatedExecutor()

        async def scenario():
            async with MicroBatcher(executor, max_wait_ms=0, max_batch=10) as mb:
                first = await mb.submit(_request(0))
                # Wait until the collector owns the first window (queue empty).
                while mb.stats.windows < 1:
                    await asyncio.sleep(0.001)
                backlog = [await mb.submit(_request(i)) for i in range(1, 5)]
                executor.gate.set()
                await asyncio.wait_for(
                    asyncio.gather(first.result(), *(t.result() for t in backlog)), timeout=5
                )
                return mb.stats

        stats = run(scenario())
        assert stats.windows == 2
        assert executor.windows[0] == ["q0"]
        assert executor.windows[1] == ["q1", "q2", "q3", "q4"]


class TestOverload:
    def test_shed_answers_with_overloaded_error(self):
        executor = GatedExecutor()

        async def scenario():
            async with MicroBatcher(
                executor, max_wait_ms=0, max_batch=1, queue_limit=2, overload="shed"
            ) as mb:
                first = await mb.submit(_request(0))
                while mb.stats.windows < 1:  # collector holds q0, queue empty again
                    await asyncio.sleep(0.001)
                queued = [await mb.submit(_request(i)) for i in (1, 2)]  # queue now full
                shed = await mb.submit(_request(3))
                shed_result = await shed.result()  # already resolved, never queued
                executor.gate.set()
                served = await asyncio.wait_for(
                    asyncio.gather(first.result(), *(t.result() for t in queued)), timeout=5
                )
                return shed, shed_result, served, mb.stats

        shed, shed_result, served, stats = run(scenario())
        assert shed.shed
        assert not shed_result.ok
        assert shed_result.id == "q3"
        assert shed_result.kind == "implies"
        assert shed_result.error["type"] == "Overloaded"
        assert all(r.ok for r in served)
        assert stats.shed == 1
        assert stats.submitted == 4
        assert stats.answered == 3  # shed requests are answered without execution

    def test_block_policy_delays_submit_until_space_frees(self):
        executor = GatedExecutor()

        async def scenario():
            async with MicroBatcher(
                executor, max_wait_ms=0, max_batch=1, queue_limit=1, overload="block"
            ) as mb:
                first = await mb.submit(_request(0))
                while mb.stats.windows < 1:
                    await asyncio.sleep(0.001)
                second = await mb.submit(_request(1))  # fills the queue
                blocked = asyncio.ensure_future(mb.submit(_request(2)))
                await asyncio.sleep(0.05)
                was_blocked = not blocked.done()  # backpressure: the put is suspended
                executor.gate.set()
                third = await asyncio.wait_for(blocked, timeout=5)
                await asyncio.wait_for(
                    asyncio.gather(first.result(), second.result(), third.result()), timeout=5
                )
                return was_blocked

        assert run(scenario())


class TestDrain:
    def test_drain_answers_everything_admitted(self):
        async def scenario():
            mb = MicroBatcher(_echo_executor, max_wait_ms=60_000, max_batch=100)
            await mb.start()
            tickets = [await mb.submit(_request(i)) for i in range(5)]
            # The window would wait a minute; drain must flush it now.
            await asyncio.wait_for(mb.drain(), timeout=5)
            return [ticket.future.result() for ticket in tickets], mb.stats

        results, stats = run(scenario())
        assert [r.id for r in results] == [f"q{i}" for i in range(5)]
        assert stats.closed_by["drain"] == 1

    def test_submit_after_drain_is_rejected(self):
        async def scenario():
            mb = MicroBatcher(_echo_executor)
            await mb.start()
            await mb.drain()
            with pytest.raises(ServiceError):
                await mb.submit(_request(0))

        run(scenario())

    def test_unstarted_batcher_rejects_submit(self):
        async def scenario():
            mb = MicroBatcher(_echo_executor)
            with pytest.raises(ServiceError):
                await mb.submit(_request(0))
            await mb.drain()

        run(scenario())


class TestFaults:
    def test_executor_fault_becomes_per_request_error_results(self):
        def broken(requests):
            raise RuntimeError("window executor exploded")

        async def scenario():
            async with MicroBatcher(broken, max_wait_ms=0, max_batch=4) as mb:
                tickets = [await mb.submit(_request(i)) for i in range(2)]
                return await asyncio.wait_for(
                    asyncio.gather(*(t.result() for t in tickets)), timeout=5
                )

        results = run(scenario())
        assert all(not r.ok for r in results)
        assert [r.id for r in results] == ["q0", "q1"]
        assert all(r.error["type"] == "RuntimeError" for r in results)

    def test_wrong_result_count_is_a_loud_harness_fault(self):
        def lossy(requests):
            return _echo_executor(requests)[:-1]

        async def scenario():
            async with MicroBatcher(lossy, max_wait_ms=0, max_batch=4) as mb:
                tickets = [await mb.submit(_request(i)) for i in range(3)]
                return await asyncio.wait_for(
                    asyncio.gather(*(t.result() for t in tickets)), timeout=5
                )

        results = run(scenario())
        assert all(not r.ok for r in results)
        assert all(r.error["type"] == "ServiceError" for r in results)

    def test_invalid_construction_is_rejected(self):
        for kwargs in (
            {"max_batch": 0},
            {"max_wait_ms": -1},
            {"queue_limit": 0},
            {"overload": "panic"},
        ):
            with pytest.raises(ServiceError):
                MicroBatcher(_echo_executor, **kwargs)


class TestAccounting:
    def test_percentile_nearest_rank(self):
        samples = sorted([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0])
        assert percentile(samples, 50) == 5.0
        assert percentile(samples, 95) == 10.0
        assert percentile(samples, 99) == 10.0
        assert percentile([], 50) is None
        assert percentile([7.5], 99) == 7.5

    def test_snapshot_reports_stage_percentiles_and_occupancy(self):
        async def scenario():
            async with MicroBatcher(_echo_executor, max_wait_ms=5, max_batch=4) as mb:
                for round_index in range(3):
                    tickets = [await mb.submit(_request(round_index * 4 + i)) for i in range(4)]
                    for ticket in tickets:
                        await ticket.result()
                        ticket.mark_responded()
                return mb.stats.snapshot()

        snapshot = run(scenario())
        assert snapshot["requests"]["submitted"] == 12
        assert snapshot["requests"]["answered"] == 12
        latency = snapshot["latency_ms"]["total"]
        assert latency["samples"] == 12
        assert latency["p50"] is not None
        assert latency["p50"] <= latency["p95"] <= latency["p99"] <= latency["max"]
        windows = snapshot["windows"]
        assert windows["count"] >= 3
        assert 0 < windows["occupancy"] <= 1
        assert windows["mean_size"] == pytest.approx(12 / windows["count"], rel=1e-6)

    def test_mark_responded_is_idempotent(self):
        async def scenario():
            async with MicroBatcher(_echo_executor, max_wait_ms=0, max_batch=1) as mb:
                ticket = await mb.submit(_request(0))
                await ticket.result()
                ticket.mark_responded()
                stamp = ticket.responded_at
                ticket.mark_responded()
                return stamp, ticket.responded_at, mb.stats.snapshot()

        stamp, stamp_again, snapshot = run(scenario())
        assert stamp == stamp_again
        assert snapshot["latency_ms"]["total"]["samples"] == 1


class TestRealPipeline:
    def test_windows_through_a_real_session_are_byte_identical(self):
        """The batcher over Session.execute_many answers like the session itself."""
        from repro.service.wire import dump_result_line
        from repro.workloads.random_service import random_service_requests

        requests = random_service_requests(30, seed=7, theory_count=2, pds_per_theory=3)
        expected = [dump_result_line(r) for r in Session().execute_many(requests)]

        async def scenario():
            session = Session()
            async with MicroBatcher(session.execute_many, max_wait_ms=5, max_batch=8) as mb:
                tickets = [await mb.submit(request) for request in requests]
                return [await ticket.result() for ticket in tickets]

        produced = [dump_result_line(r) for r in run(scenario())]
        assert produced == expected
