"""Tests for repro.consistency.reduction — the Theorem 11 NAE-3SAT reduction."""

import random

import pytest

from repro.consistency.cad import cad_consistency, verify_cad_witness
from repro.consistency.reduction import (
    decode_assignment,
    reduce_nae3sat_to_cad_consistency,
    solve_nae3sat_via_reduction,
)
from repro.errors import ConsistencyError
from repro.sat.formulas import CnfFormula
from repro.sat.nae3sat import nae_brute_force
from repro.workloads.random_formulas import random_3cnf, random_nae_satisfiable_3cnf


class TestInstanceStructure:
    def test_r0_and_clause_relations(self):
        formula = CnfFormula.of([["x1", "x2", "~x3"]])
        instance = reduce_nae3sat_to_cad_consistency(formula, preprocess=False)
        database = instance.database
        r0 = database.relation("R0")
        assert len(r0) == 2
        assert r0.column("A") == {"a"}
        r1 = database.relation("R1")
        assert len(r1) == 1
        # Clause variables' A columns are omitted from the clause scheme.
        assert {"A1", "A2", "A3"}.isdisjoint(set(r1.attributes))

    def test_fd_set_shape(self):
        formula = CnfFormula.of([["x1", "x2", "~x3"], ["x1", "x3", "x4"]])
        instance = reduce_nae3sat_to_cad_consistency(formula, preprocess=False)
        bi_to_ai = [fd for fd in instance.fds if len(fd.lhs) == 1]
        clause_fds = [fd for fd in instance.fds if len(fd.lhs) == 3]
        assert len(bi_to_ai) == 4  # one per variable
        assert len(clause_fds) == 2  # one per clause
        assert all(set(fd.rhs) == {"A"} for fd in clause_fds)

    def test_polarity_encoded_in_clause_tuple(self):
        formula = CnfFormula.of([["x1", "x2", "~x3"]])
        instance = reduce_nae3sat_to_cad_consistency(formula, preprocess=False)
        row = next(iter(instance.database.relation("R1").rows))
        assert row["B1"] == instance.positive_symbol("x1")
        assert row["B2"] == instance.positive_symbol("x2")
        assert row["B3"] == instance.negative_symbol("x3")

    def test_duplicate_clauses_produce_one_gadget(self):
        formula = CnfFormula.of([["x1", "x2", "x3"], ["x2", "x1", "x3"]])
        instance = reduce_nae3sat_to_cad_consistency(formula, preprocess=False)
        clause_relations = [name for name in instance.database.scheme.names if name.startswith("R") and name != "R0"]
        assert len(clause_relations) == 1

    def test_non_3cnf_rejected(self):
        with pytest.raises(ConsistencyError):
            reduce_nae3sat_to_cad_consistency(
                CnfFormula.of([["x1", "x2", "x3", "x4"]])
            )

    def test_attribute_lookup_helpers(self):
        formula = CnfFormula.of([["x1", "x2", "x3"]])
        instance = reduce_nae3sat_to_cad_consistency(formula, preprocess=False)
        assert instance.attribute_for_variable("x2") == ("A2", "B2")
        assert instance.positive_symbol("x1") == "pos1"
        assert instance.negative_symbol("x3") == "neg3"


class TestReductionCorrectness:
    def test_satisfiable_formula_round_trip(self):
        formula = CnfFormula.of([["x1", "x2", "~x3"], ["~x1", "x2", "x3"]])
        assignment = solve_nae3sat_via_reduction(formula)
        assert assignment is not None
        assert formula.nae_evaluate(assignment)

    def test_unsatisfiable_formula(self):
        formula = CnfFormula.of([["x1", "x1", "x1"]])
        assert solve_nae3sat_via_reduction(formula) is None

    def test_decode_returns_none_on_inconsistent(self):
        formula = CnfFormula.of([["x1", "x1", "x1"]])
        instance = reduce_nae3sat_to_cad_consistency(formula)
        result = cad_consistency(instance.database, list(instance.fds))
        assert decode_assignment(instance, result) is None

    def test_witness_passes_independent_verification(self):
        formula = CnfFormula.of([["x1", "x2", "x3"], ["~x1", "~x2", "x3"]])
        instance = reduce_nae3sat_to_cad_consistency(formula)
        result = cad_consistency(instance.database, list(instance.fds))
        assert result.consistent
        assert verify_cad_witness(instance.database, list(instance.fds), result.witness)

    def test_agreement_with_oracle_on_random_formulas(self):
        rng = random.Random(42)
        for trial in range(12):
            formula = random_3cnf(rng.randint(3, 4), rng.randint(1, 4), seed=rng.randint(0, 10**6))
            expected = nae_brute_force(formula) is not None
            assignment = solve_nae3sat_via_reduction(formula)
            assert (assignment is not None) == expected
            if assignment is not None:
                assert formula.nae_evaluate(assignment)

    def test_planted_satisfiable_formulas_always_consistent(self):
        rng = random.Random(7)
        for trial in range(5):
            formula = random_nae_satisfiable_3cnf(4, 4, seed=rng.randint(0, 10**6))
            assignment = solve_nae3sat_via_reduction(formula)
            assert assignment is not None and formula.nae_evaluate(assignment)
