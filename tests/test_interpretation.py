"""Tests for repro.partitions.interpretation (Definitions 1–3 of the paper)."""

import pytest

from repro.errors import PartitionError
from repro.partitions.interpretation import AttributeInterpretation, PartitionInterpretation
from repro.partitions.partition import Partition
from repro.relational.database import Database
from repro.relational.relations import Relation
from repro.relational.tuples import Row


@pytest.fixture
def figure1_interpretation() -> PartitionInterpretation:
    return PartitionInterpretation.from_named_blocks(
        {
            "A": {"a": {1}, "a1": {4}, "a2": {2, 3}},
            "B": {"b": {1, 4}, "b1": {2, 3}},
            "C": {"c": {1, 2}, "c1": {3, 4}},
        }
    )


class TestAttributeInterpretation:
    def test_naming_must_cover_all_blocks(self):
        partition = Partition([{1}, {2}])
        with pytest.raises(PartitionError):
            AttributeInterpretation(partition, {"x": {1}})

    def test_naming_must_be_injective(self):
        with pytest.raises(PartitionError):
            AttributeInterpretation.from_block_names({"x": {1}, "y": {1}})

    def test_empty_population_rejected(self):
        with pytest.raises(PartitionError):
            AttributeInterpretation(Partition(), {})

    def test_block_named_and_symbol_of_are_inverse(self):
        interp = AttributeInterpretation.from_block_names({"x": {1, 2}, "y": {3}})
        assert interp.block_named("x") == {1, 2}
        assert interp.block_named("unknown") is None
        assert interp.symbol_of(frozenset({1, 2})) == "x"
        with pytest.raises(PartitionError):
            interp.symbol_of(frozenset({9}))

    def test_named_symbols(self):
        interp = AttributeInterpretation.from_block_names({"x": {1}, "y": {2}})
        assert interp.named_symbols() == {"x", "y"}


class TestMeanings:
    def test_attribute_meaning_is_atomic_partition(self, figure1_interpretation):
        assert figure1_interpretation.meaning("A") == Partition([{1}, {4}, {2, 3}])

    def test_product_meaning(self, figure1_interpretation):
        assert figure1_interpretation.meaning("A * B") == Partition([{1}, {4}, {2, 3}])

    def test_sum_meaning(self, figure1_interpretation):
        assert figure1_interpretation.meaning("B + C") == Partition([{1, 2, 3, 4}])

    def test_scheme_meaning_equals_product_of_attributes(self, figure1_interpretation):
        assert figure1_interpretation.meaning_of_scheme("ABC") == figure1_interpretation.meaning(
            "A * B * C"
        )

    def test_scheme_meaning_independent_of_name(self, figure1_interpretation):
        # R[ABC] and R1[ABC] have the same meaning (§3.1).
        assert figure1_interpretation.meaning_of_scheme("ABC") == figure1_interpretation.meaning_of_scheme(
            "CBA"
        )

    def test_symbol_meaning(self, figure1_interpretation):
        assert figure1_interpretation.meaning_of_symbol("A", "a") == {1}
        assert figure1_interpretation.meaning_of_symbol("A", "nonexistent") == frozenset()

    def test_tuple_meaning_is_block_intersection(self, figure1_interpretation):
        assert figure1_interpretation.meaning_of_tuple(Row(A="a", B="b", C="c")) == {1}
        assert figure1_interpretation.meaning_of_tuple(Row(A="a", B="b1", C="c")) == frozenset()

    def test_unknown_attribute_raises(self, figure1_interpretation):
        with pytest.raises(PartitionError):
            figure1_interpretation.meaning("Z")


class TestSatisfaction:
    def test_satisfies_database(self, figure1_interpretation):
        good = Database.single(
            Relation.from_strings("R", "ABC", ["a.b.c", "a2.b1.c", "a2.b1.c1", "a1.b.c1"])
        )
        bad = Database.single(Relation.from_strings("R", "ABC", ["a.b1.c"]))
        assert figure1_interpretation.satisfies_database(good)
        assert not figure1_interpretation.satisfies_database(bad)

    def test_satisfies_pd_requires_equal_populations(self):
        # A and B have the same partition structure but different populations:
        # the PD A = B must fail (Definition 3 checks populations too).
        interpretation = PartitionInterpretation.from_named_blocks(
            {"A": {"a": {1, 2}}, "B": {"b": {3, 4}}}
        )
        assert not interpretation.satisfies_pd("A = B")

    def test_satisfies_pd_figure1(self, figure1_interpretation):
        assert figure1_interpretation.satisfies_pd("A = A*B")
        assert not figure1_interpretation.satisfies_pd("B = B*A")
        assert figure1_interpretation.satisfies_all_pds(["A = A*B", "A + A = A"])

    def test_example_a_functional_determination(self):
        # Example a: A = A*B allows managers (B) without employees (A), and
        # pA ⊆ pB in any satisfying interpretation.
        interpretation = PartitionInterpretation.from_named_blocks(
            {
                "A": {"e13": {1, 2}, "e14": {3}},
                "B": {"m7": {1, 2, 3}, "m8": {4, 5}},
            }
        )
        assert interpretation.satisfies_pd("A = A*B")
        assert interpretation.population("A") < interpretation.population("B")
        # The dual forms express the same constraint (§3.2).
        assert interpretation.satisfies_pd("B = B + A")
        assert interpretation.satisfies_pd("A <= B")

    def test_lattice_roundtrip(self, figure1_interpretation):
        lattice = figure1_interpretation.lattice()
        assert lattice.satisfies("A = A*B") == figure1_interpretation.satisfies_pd("A = A*B")
