"""Tests for repro.relational.algebra (the §7 relational-algebra substrate)."""

import pytest

from repro.errors import SchemaError
from repro.relational import algebra
from repro.relational.relations import Relation
from repro.relational.tuples import Row


@pytest.fixture
def left() -> Relation:
    return Relation.from_strings("left", "AB", ["a1.b1", "a2.b1", "a2.b2"])


@pytest.fixture
def right() -> Relation:
    return Relation.from_strings("right", "BC", ["b1.c1", "b2.c2", "b3.c3"])


class TestProjectionSelection:
    def test_project_removes_duplicates(self, left):
        projected = algebra.project(left, "B")
        assert len(projected) == 2
        assert projected.column("B") == {"b1", "b2"}

    def test_project_missing_attribute(self, left):
        with pytest.raises(SchemaError):
            algebra.project(left, "C")

    def test_project_empty_attribute_set(self, left):
        with pytest.raises(SchemaError):
            algebra.project(left, [])

    def test_select_by_predicate(self, left):
        selected = algebra.select(left, lambda row: row["A"] == "a2")
        assert len(selected) == 2

    def test_select_eq(self, left):
        assert len(algebra.select_eq(left, "B", "b1")) == 2

    def test_select_eq_missing_attribute(self, left):
        with pytest.raises(SchemaError):
            algebra.select_eq(left, "Z", "z")


class TestRename:
    def test_rename_attribute(self, left):
        renamed = algebra.rename(left, {"A": "X"})
        assert set(renamed.attributes) == {"X", "B"}
        assert Row(X="a1", B="b1") in renamed

    def test_rename_to_duplicate_rejected(self, left):
        with pytest.raises(SchemaError):
            algebra.rename(left, {"A": "B"})

    def test_rename_unknown_attribute_rejected(self, left):
        with pytest.raises(SchemaError):
            algebra.rename(left, {"Z": "Y"})


class TestSetOperations:
    def test_union_difference_intersection(self, left):
        other = Relation.from_strings("other", "AB", ["a1.b1", "a9.b9"])
        assert len(algebra.union(left, other)) == 4
        assert len(algebra.difference(left, other)) == 2
        assert len(algebra.intersection(left, other)) == 1

    def test_set_operations_require_same_attributes(self, left, right):
        with pytest.raises(SchemaError):
            algebra.union(left, right)


class TestJoins:
    def test_cartesian_product_requires_disjoint_attributes(self, left):
        with pytest.raises(SchemaError):
            algebra.cartesian_product(left, left)

    def test_cartesian_product_size(self, left):
        other = Relation.from_strings("other", "CD", ["c1.d1", "c2.d2"])
        assert len(algebra.cartesian_product(left, other)) == 6

    def test_natural_join_on_shared_attribute(self, left, right):
        joined = algebra.natural_join(left, right)
        assert set(joined.attributes) == {"A", "B", "C"}
        assert Row(A="a1", B="b1", C="c1") in joined
        assert Row(A="a2", B="b2", C="c2") in joined
        assert len(joined) == 3

    def test_natural_join_disjoint_is_product(self, left):
        other = Relation.from_strings("other", "CD", ["c1.d1"])
        assert len(algebra.natural_join(left, other)) == 3

    def test_join_then_project_recovers_contained_projection(self, left, right):
        # Classic lossless-ish sanity check: projecting the join back onto the
        # left attributes yields a subset of the left relation.
        joined = algebra.natural_join(left, right)
        back = algebra.project(joined, left.attributes)
        assert back.rows <= left.rows

    def test_divide(self):
        dividend = Relation.from_strings("div", "AB", ["a1.b1", "a1.b2", "a2.b1"])
        divisor = Relation.from_strings("d", "B", ["b1", "b2"])
        result = algebra.divide(dividend, divisor)
        assert result.column("A") == {"a1"}

    def test_divide_requires_proper_subset(self, left):
        with pytest.raises(SchemaError):
            algebra.divide(left, left)

    def test_divide_by_empty_returns_projection(self):
        dividend = Relation.from_strings("div", "AB", ["a1.b1"])
        divisor = Relation(Relation.from_strings("d", "B", ["b1"]).scheme, [])
        assert algebra.divide(dividend, divisor).column("A") == {"a1"}
