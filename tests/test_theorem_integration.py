"""Cross-module integration tests: the paper's theorems checked end-to-end on random data.

Each test class corresponds to one theorem and exercises several subsystems
at once (relations ↔ interpretations ↔ lattices ↔ implication ↔ consistency),
which is exactly how the paper's proofs compose them.
"""

import random

from hypothesis import given, settings

from repro.consistency.pd_consistency import is_pd_consistent
from repro.consistency.weak_instance_fd import fpd_consistency
from repro.dependencies.conversion import fd_to_pd, fds_to_pds
from repro.dependencies.pd import PartitionDependency
from repro.dependencies.satisfaction import relation_satisfies_pd
from repro.implication.alg import pd_implies
from repro.lattice.interpretation_lattice import InterpretationLattice
from repro.lattice.quotient import finite_counterexample
from repro.partitions.canonical import canonical_interpretation, canonical_relation
from repro.relational.database import Database
from repro.relational.functional_dependencies import FunctionalDependency, implies
from repro.relational.relations import Relation
from repro.relational.weak_instance import is_weak_instance, weak_instance_consistency
from repro.workloads.random_dependencies import random_fd_set, random_pd_set
from repro.workloads.random_relations import random_database, random_relation

from tests.conftest import small_relations


class TestTheorem1:
    """I ⊨ e = e'  iff  L(I) ⊨ e = e'."""

    @given(small_relations(max_rows=4))
    @settings(max_examples=25, deadline=None)
    def test_interpretation_and_lattice_agree(self, relation):
        interpretation = canonical_interpretation(relation)
        lattice = InterpretationLattice.from_interpretation(interpretation)
        for pd in ["A = A*B", "C = A + B", "A*B = A*C", "B + C = A + C"]:
            assert interpretation.satisfies_pd(pd) == lattice.satisfies(pd), pd


class TestTheorem3:
    """r ⊨ X → Y  iff  I(r) ⊨ X = X·Y; and R(I) inherits FDs from FPDs of I."""

    def test_random_relations_fd_fpd_agreement(self):
        rng = random.Random(0)
        for trial in range(20):
            relation = random_relation(3, rng.randint(1, 6), domain_size=2, seed=rng.randint(0, 10**6))
            fd = FunctionalDependency("A", "B")
            assert relation.satisfies_fd(fd) == relation_satisfies_pd(relation, fd_to_pd(fd))

    def test_part_a_interpretation_to_canonical_relation(self):
        # If I ⊨ X = X·Y then R(I) ⊨ X → Y  (Theorem 3a) — also for non-EAP I.
        from repro.partitions.interpretation import PartitionInterpretation

        interpretation = PartitionInterpretation.from_named_blocks(
            {"A": {"a1": {1}, "a2": {2, 3}}, "B": {"b1": {1, 2, 3}, "b2": {4}}}
        )
        assert interpretation.satisfies_pd("A = A*B")
        relation = canonical_relation(interpretation)
        assert relation.satisfies_fd(FunctionalDependency("A", "B"))


class TestTheorems6And7:
    """Partition consistency ⇔ weak-instance existence."""

    def test_consistency_agrees_with_weak_instance_test_on_random_databases(self):
        rng = random.Random(1)
        for trial in range(10):
            database = random_database(2, 4, 3, 2, domain_size=2, seed=rng.randint(0, 10**6))
            fds = random_fd_set(4, 2, seed=rng.randint(0, 10**6), max_side=2)
            fds = [fd for fd in fds if set(fd.attributes) <= set(database.universe)]
            if not fds:
                continue
            weak = weak_instance_consistency(database, fds).consistent
            via_pds = is_pd_consistent(database, fds_to_pds(fds))
            assert weak == via_pds

    def test_witness_interpretation_round_trip(self):
        database = Database(
            [
                Relation.from_strings("R", "AB", ["a1.b1", "a2.b2"]),
                Relation.from_strings("S", "BC", ["b1.c1", "b2.c2"]),
            ]
        )
        result = fpd_consistency(database, ["A = A*B", "B = B*C"])
        assert result.consistent
        # The canonical relation of the witness interpretation is again a weak
        # instance satisfying the FDs (the two directions of Theorem 6a).
        relation = canonical_relation(result.interpretation)
        assert is_weak_instance(relation.project(database.universe), database)


class TestTheorem8:
    """E ⊨_lat δ  ⇔  E ⊨_rel δ  ⇔  finite versions; counterexamples are constructible."""

    def test_nonimplication_yields_finite_lattice_and_relation_counterexamples(self):
        E = ["A = A*B"]
        query = "B = B*A"
        assert not pd_implies(E, query)
        # finite lattice counterexample (Theorem 8's L_H)
        lattice = finite_counterexample(E, query)
        assert lattice is not None and lattice.satisfies_all(E) and not lattice.satisfies(query)
        # finite relation counterexample
        relation = Relation.from_strings("r", "AB", ["a1.b1", "a2.b1"])
        assert relation_satisfies_pd(relation, E[0]) and not relation_satisfies_pd(relation, query)

    def test_implication_sound_on_random_satisfying_relations(self):
        rng = random.Random(3)
        checked = 0
        for trial in range(40):
            E = random_pd_set(3, 2, seed=rng.randint(0, 10**6), max_complexity=2)
            query = random_pd_set(3, 1, seed=rng.randint(0, 10**6), max_complexity=2)[0]
            if not pd_implies(E, query):
                continue
            relation = random_relation(3, rng.randint(1, 5), domain_size=2, seed=rng.randint(0, 10**6))
            if all(relation_satisfies_pd(relation, pd) for pd in E):
                assert relation_satisfies_pd(relation, query), (E, query)
                checked += 1
        assert checked > 0  # the loop really exercised the soundness direction


class TestTheorem9AgainstSemantics:
    """ALG's verdicts match brute-force semantic implication over small relations."""

    def test_small_complete_search(self):
        # For tiny universes we can check semantic implication over all
        # relations with at most 3 tuples over a 2-symbol domain per column.
        import itertools

        symbols = {"A": ["a1", "a2"], "B": ["b1", "b2"]}
        all_rows = [
            {"A": a, "B": b} for a in symbols["A"] for b in symbols["B"]
        ]
        relations = []
        for size in range(1, 4):
            for combo in itertools.combinations(range(len(all_rows)), size):
                relations.append(
                    Relation.from_rows("r", "AB", [all_rows[i] for i in combo])
                )

        def semantically_implies(E, query):
            for relation in relations:
                if all(relation_satisfies_pd(relation, pd) for pd in E):
                    if not relation_satisfies_pd(relation, query):
                        return False
            return True

        candidates = ["A = A*B", "B = B*A", "A = B", "A = A + B", "B = A + B", "A*B = A"]
        rng = random.Random(5)
        for trial in range(25):
            E = [PartitionDependency.parse(rng.choice(candidates))]
            query = PartitionDependency.parse(rng.choice(candidates))
            alg_says = pd_implies(E, query)
            brute_says = semantically_implies(E, query)
            # ALG is exact for implication over *all* relations; over our tiny
            # finite sample a non-implication may fail to produce a witness, so
            # only the soundness direction is a strict containment.
            if alg_says:
                assert brute_says, (str(E[0]), str(query))

    def test_fd_special_case_completeness(self):
        # For FPDs, implication over relations is decided by FD closure; check
        # ALG is complete there (both directions), on random inputs.
        rng = random.Random(6)
        for trial in range(20):
            fds = random_fd_set(3, 2, seed=rng.randint(0, 10**6), max_side=2)
            target = random_fd_set(3, 1, seed=rng.randint(0, 10**6), max_side=2)[0]
            assert pd_implies(fds_to_pds(fds), fd_to_pd(target)) == implies(fds, target)


class TestTheorem11Boundary:
    """CAD consistency is the hard variant; without CAD the same instances may be consistent."""

    def test_open_world_vs_cad_gap(self):
        from repro.consistency.cad import cad_consistency
        from repro.relational.functional_dependencies import parse_fd_set

        database = Database(
            [
                Relation.from_strings("R", "AB", ["a1.b1", "a1.b2"]),
                Relation.from_strings("S", "A", ["a2"]),
            ]
        )
        fds = parse_fd_set(["B -> A"])
        assert weak_instance_consistency(database, fds).consistent
        assert not cad_consistency(database, fds).consistent
