"""Tests for repro.dependencies.pd and fpd: PD/FPD value types and conversions."""

import pytest

from repro.dependencies.conversion import (
    fd_to_fpd,
    fd_to_pd,
    fds_to_pds,
    fpds_to_fds,
    pd_between_products_to_fds,
    pds_to_fds,
    scheme_equation_to_fds,
)
from repro.dependencies.fpd import FunctionalPartitionDependency
from repro.dependencies.pd import (
    PartitionDependency,
    as_partition_dependency,
    lattice_axiom_instances,
    parse_pd_set,
)
from repro.errors import DependencyError
from repro.relational.attributes import AttributeSet
from repro.relational.functional_dependencies import FunctionalDependency


class TestPartitionDependency:
    def test_parse_equation(self):
        pd = PartitionDependency.parse("A * B = C + D")
        assert pd.left == as_partition_dependency("A*B = A*B").left
        assert set(pd.attributes) == {"A", "B", "C", "D"}

    def test_parse_order_notation(self):
        # X <= Y abbreviates X = X * Y (§3.2).
        pd = PartitionDependency.parse("A <= B")
        assert pd == PartitionDependency.parse("A = A * B")

    def test_parse_unicode_leq(self):
        assert PartitionDependency.parse("A ≤ B") == PartitionDependency.parse("A <= B")

    def test_parse_errors(self):
        with pytest.raises(DependencyError):
            PartitionDependency.parse("A * B")
        with pytest.raises(DependencyError):
            PartitionDependency.parse("A =")

    def test_reversed_and_dual(self):
        pd = PartitionDependency.parse("A = B + C")
        assert pd.reversed() == PartitionDependency.parse("B + C = A")
        assert pd.dual() == PartitionDependency.parse("A = B * C")

    def test_complexity_and_size(self):
        pd = PartitionDependency.parse("A*B = A*B*C")
        assert pd.complexity() == 3
        assert pd.size() == 8

    def test_is_functional(self):
        assert PartitionDependency.parse("A = A*B").is_functional()
        assert PartitionDependency.parse("A*B = A*B*C*D").is_functional()
        assert not PartitionDependency.parse("C = A + B").is_functional()

    def test_as_partition_dependency_coercion(self):
        assert as_partition_dependency(("A", "A*B")) == PartitionDependency.parse("A = A*B")
        with pytest.raises(DependencyError):
            as_partition_dependency(42)

    def test_parse_pd_set(self):
        assert len(parse_pd_set(["A = A*B", "C = A + B"])) == 2

    def test_lattice_axiom_instances_all_identities(self):
        from repro.implication.identities import is_pd_identity

        for pd in lattice_axiom_instances("A", "B", "C"):
            assert is_pd_identity(pd), str(pd)

    def test_equality_and_hash(self):
        assert PartitionDependency.parse("A = A*B") == PartitionDependency.parse("A = A * B")
        assert hash(PartitionDependency.parse("A = B")) == hash(PartitionDependency.parse("A = B"))


class TestFunctionalPartitionDependency:
    def test_three_equivalent_forms(self):
        fpd = FunctionalPartitionDependency("AB", "C")
        assert fpd.as_product_pd() == PartitionDependency.parse("A*B = (A*B) * C")
        assert fpd.as_sum_pd() == PartitionDependency.parse("C = C + A*B")
        assert fpd.as_order_text() == "AB <= C"

    def test_fd_roundtrip(self):
        fd = FunctionalDependency("AB", "CD")
        assert fd_to_fpd(fd).to_fd() == fd
        assert FunctionalPartitionDependency.from_fd(fd).lhs == AttributeSet("AB")

    def test_try_from_pd_product_form(self):
        fpd = FunctionalPartitionDependency.try_from_pd(PartitionDependency.parse("A*B = A*B*C"))
        assert fpd is not None
        assert fpd.to_fd() == FunctionalDependency("AB", "C")

    def test_try_from_pd_sum_form(self):
        fpd = FunctionalPartitionDependency.try_from_pd(PartitionDependency.parse("C = C + A"))
        assert fpd is not None
        assert fpd.to_fd() == FunctionalDependency("A", "C")

    def test_try_from_pd_rejects_mixed(self):
        assert FunctionalPartitionDependency.try_from_pd(PartitionDependency.parse("C = A + B")) is None
        assert FunctionalPartitionDependency.try_from_pd(PartitionDependency.parse("A*B = C*D")) is None

    def test_trivial(self):
        assert FunctionalPartitionDependency("AB", "A").is_trivial()
        assert not FunctionalPartitionDependency("A", "B").is_trivial()

    def test_empty_sides_rejected(self):
        with pytest.raises(DependencyError):
            FunctionalPartitionDependency("", "A")


class TestConversions:
    def test_fds_to_pds_and_back(self):
        fds = [FunctionalDependency("A", "B"), FunctionalDependency("BC", "D")]
        pds = fds_to_pds(fds)
        assert pds_to_fds(pds) == fds

    def test_fpds_to_fds(self):
        fpds = [FunctionalPartitionDependency("A", "B")]
        assert fpds_to_fds(fpds) == [FunctionalDependency("A", "B")]

    def test_example_f_scheme_equation(self):
        # X = Y·Z is expressed by the FD pair {X -> YZ, YZ -> X} (Example f).
        fds = scheme_equation_to_fds("X", "YZ")
        assert FunctionalDependency("X", "YZ") in fds and FunctionalDependency("YZ", "X") in fds

    def test_pd_between_products_to_fds(self):
        fds = pd_between_products_to_fds("A = B*C")
        assert len(fds) == 2
        with pytest.raises(ValueError):
            pd_between_products_to_fds("A = B + C")

    def test_fd_to_pd_is_fpd(self):
        assert fd_to_pd(FunctionalDependency("A", "B")).is_functional()

    def test_pds_to_fds_skips_non_functional(self):
        assert pds_to_fds(["C = A + B", "A = A*B"]) == [FunctionalDependency("A", "B")]
