"""Tests for repro.relational.attributes."""

import pytest

from repro.errors import SchemaError
from repro.relational.attributes import AttributeSet, as_attribute_set, validate_attribute, validate_symbol


class TestValidation:
    def test_valid_attribute_passes_through(self):
        assert validate_attribute("A") == "A"
        assert validate_attribute("employee_nr") == "employee_nr"

    def test_empty_attribute_rejected(self):
        with pytest.raises(SchemaError):
            validate_attribute("")

    def test_non_string_attribute_rejected(self):
        with pytest.raises(SchemaError):
            validate_attribute(3)

    def test_symbol_validation(self):
        assert validate_symbol("a1") == "a1"
        with pytest.raises(SchemaError):
            validate_symbol(None)


class TestAttributeSet:
    def test_string_constructor_splits_characters(self):
        assert AttributeSet("ABC") == AttributeSet(["A", "B", "C"])

    def test_iterable_constructor(self):
        assert set(AttributeSet(["A", "B1"])) == {"A", "B1"}

    def test_iteration_is_sorted(self):
        assert list(AttributeSet("CBA")) == ["A", "B", "C"]

    def test_union_intersection_difference_preserve_type(self):
        left = AttributeSet("AB")
        right = AttributeSet("BC")
        assert isinstance(left | right, AttributeSet)
        assert isinstance(left & right, AttributeSet)
        assert isinstance(left - right, AttributeSet)
        assert (left | right) == AttributeSet("ABC")
        assert (left & right) == AttributeSet("B")
        assert (left - right) == AttributeSet("A")

    def test_union_method(self):
        assert AttributeSet("A").union("BC") == AttributeSet("ABC")

    def test_str_compact_for_single_char_attributes(self):
        assert str(AttributeSet("BA")) == "AB"

    def test_str_comma_separated_for_long_names(self):
        assert str(AttributeSet(["Emp", "Mgr"])) == "Emp,Mgr"

    def test_empty_set_allowed(self):
        assert len(AttributeSet()) == 0

    def test_invalid_member_rejected(self):
        with pytest.raises(SchemaError):
            AttributeSet(["A", ""])

    def test_as_attribute_set_idempotent(self):
        original = AttributeSet("AB")
        assert as_attribute_set(original) is original

    def test_as_attribute_set_from_string(self):
        assert as_attribute_set("AB") == AttributeSet(["A", "B"])

    def test_hashable_and_usable_as_key(self):
        mapping = {AttributeSet("AB"): 1}
        assert mapping[AttributeSet("BA")] == 1
