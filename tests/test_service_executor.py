"""Shard executor: deterministic ordering, byte-identical fan-out, both start methods."""

import multiprocessing

import pytest

from repro.dependencies.pd import PartitionDependency
from repro.errors import ServiceError
from repro.service.executor import ShardExecutor
from repro.service.planner import execute_plan
from repro.service.session import Session
from repro.service.wire import QueryRequest, dump_request_line, dump_result_line
from repro.workloads.random_service import random_service_requests

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _pd(text: str) -> PartitionDependency:
    return PartitionDependency.parse(text)


def _encoded(results):
    return [dump_result_line(r) for r in results]


@pytest.fixture(scope="module")
def stream():
    return random_service_requests(40, seed=31, theory_count=2, pds_per_theory=3)


@pytest.fixture(scope="module")
def reference(stream):
    return _encoded(execute_plan(Session(), stream))


class TestShardedExecution:
    def test_two_shards_byte_identical_to_in_process(self, stream, reference):
        with ShardExecutor(shards=2) as executor:
            assert _encoded(executor.execute(stream)) == reference

    def test_three_shards_byte_identical_and_ordered(self, stream, reference):
        with ShardExecutor(shards=3) as executor:
            results = executor.execute(stream)
        assert _encoded(results) == reference
        assert [r.id for r in results] == [r.id for r in stream]

    def test_wire_level_entry_point(self, stream, reference):
        lines = [dump_request_line(r) for r in stream]
        with ShardExecutor(shards=2) as executor:
            assert executor.execute_encoded(lines) == reference

    def test_wire_level_entry_point_with_predecoded_requests(self, stream, reference):
        lines = [dump_request_line(r) for r in stream]
        with ShardExecutor(shards=2) as executor:
            assert executor.execute_encoded(lines, requests=stream) == reference
        with pytest.raises(ServiceError):
            ShardExecutor(shards=2).execute_encoded(lines, requests=stream[:-1])

    def test_more_shards_than_requests(self):
        requests = random_service_requests(3, seed=2)
        expected = _encoded(execute_plan(Session(), requests))
        with ShardExecutor(shards=8) as executor:
            assert _encoded(executor.execute(requests)) == expected

    def test_empty_stream(self):
        with ShardExecutor(shards=2) as executor:
            assert executor.execute([]) == []
            assert executor.execute_encoded([]) == []

    def test_session_dependencies_reach_workers(self):
        requests = [
            QueryRequest(kind="implies", id="q0", query=_pd("A = A*C")),
            QueryRequest(kind="implies", id="q1", query=_pd("C = C*A")),
        ]
        with ShardExecutor(shards=2, dependencies=["A = A*B", "B = B*C"]) as executor:
            results = executor.execute(requests)
        assert results[0].value == {"implied": True}
        assert results[1].value == {"implied": False}

    def test_pool_survives_multiple_execute_calls(self, stream, reference):
        with ShardExecutor(shards=2) as executor:
            first = _encoded(executor.execute(stream[:10]))
            second = _encoded(executor.execute(stream[:10]))
        assert first == second == reference[:10]


class TestStartMethods:
    @pytest.mark.skipif(not HAS_FORK, reason="platform has no fork start method")
    def test_fork_workers(self):
        requests = random_service_requests(12, seed=8)
        expected = _encoded(execute_plan(Session(), requests))
        with ShardExecutor(shards=2, start_method="fork") as executor:
            assert _encoded(executor.execute(requests)) == expected

    def test_spawn_workers(self):
        # Spawn re-imports everything per worker; keep the stream tiny.
        requests = random_service_requests(6, seed=8)
        expected = _encoded(execute_plan(Session(), requests))
        with ShardExecutor(shards=2, start_method="spawn") as executor:
            assert _encoded(executor.execute(requests)) == expected


class TestValidation:
    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ServiceError):
            ShardExecutor(shards=0)

    def test_close_is_idempotent(self):
        executor = ShardExecutor(shards=1)
        executor.execute(random_service_requests(2, seed=1))
        executor.close()
        executor.close()
        # A closed executor transparently re-creates its pool.
        assert executor.execute(random_service_requests(2, seed=1))
        executor.close()
