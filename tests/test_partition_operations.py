"""Property-based tests: partitions satisfy the lattice axioms of §2.2 / §3.2."""

from hypothesis import given, settings

from repro.partitions.operations import (
    check_lattice_axioms,
    is_refinement_chain,
    join,
    meet,
    product,
    satisfies_lattice_axioms,
    sum_,
)
from repro.partitions.partition import Partition

from tests.conftest import partitions, partitions_over


class TestLatticeAxiomsProperty:
    @given(partitions(), partitions(), partitions())
    @settings(max_examples=150)
    def test_all_axioms_hold_even_across_populations(self, x, y, z):
        # §3.2: associativity, commutativity, idempotence and absorption are
        # true in any partition interpretation — also when the populations of
        # the operands differ.
        assert satisfies_lattice_axioms(x, y, z), check_lattice_axioms(x, y, z)

    @given(partitions_over(), partitions_over(), partitions_over())
    @settings(max_examples=100)
    def test_axioms_on_shared_population(self, x, y, z):
        assert satisfies_lattice_axioms(x, y, z)

    @given(partitions_over(), partitions_over())
    @settings(max_examples=100)
    def test_order_characterizations_agree(self, x, y):
        # x <= y  iff  x = x*y  iff  y = y + x (the natural order of §2.2).
        via_product = (x * y == x)
        via_sum = (x + y == y)
        assert via_product == via_sum == x.refines(y)

    @given(partitions_over(), partitions_over())
    @settings(max_examples=100)
    def test_product_is_glb_and_sum_is_lub(self, x, y):
        m = x * y
        j = x + y
        assert m.refines(x) and m.refines(y)
        assert x.refines(j) and y.refines(j)

    @given(partitions(), partitions())
    @settings(max_examples=100)
    def test_population_arithmetic(self, x, y):
        # Product lives on the intersection, sum on the union of populations (§3.1).
        assert (x * y).population == x.population & y.population
        assert (x + y).population == x.population | y.population


class TestNaryWrappers:
    def test_product_and_sum_fold(self):
        parts = [Partition([{1, 2}, {3}]), Partition([{1}, {2, 3}]), Partition([{1, 2, 3}])]
        assert product(parts) == Partition.discrete([1, 2, 3])
        assert sum_(parts) == Partition([{1, 2, 3}])
        assert meet(parts) == product(parts)
        assert join(parts) == sum_(parts)

    def test_empty_fold_rejected(self):
        import pytest

        from repro.errors import PartitionError

        with pytest.raises(PartitionError):
            product([])
        with pytest.raises(PartitionError):
            sum_([])

    def test_refinement_chain(self):
        chain = [
            Partition.discrete([1, 2, 3]),
            Partition([{1, 2}, {3}]),
            Partition.indiscrete([1, 2, 3]),
        ]
        assert is_refinement_chain(chain)
        assert not is_refinement_chain(list(reversed(chain)))
