"""Durable Γ snapshots: codec integrity, restore equivalence, zero-warmup deployment.

The contract under test, layer by layer:

* **codec** — ``dump_snapshot → decode_snapshot → dump`` is byte-identical on
  randomized warm sessions; corruption (bit flips, truncation), version skew,
  a missing version field and foreign document kinds are all refused with a
  :class:`~repro.errors.ServiceError` before any artifact is rebuilt;
* **restore semantics** — a restored session is *indistinguishable* from the
  warm session it was captured from: byte-identical answers on mixed query
  streams (embedded-Γ and session-Γ alike), working ``add_dependencies``
  after restore, and a preserved generation counter that refuses stale
  snapshots via ``expected_generation``;
* **deployment** — a snapshot ships to 2-shard executor workers (zero-warmup
  boot, byte-identical output), boots the asyncio server warm from
  ``--snapshot-dir``, is written back on drain, and can be exported from a
  *live* server with the ``{"control": "snapshot"}`` line.
"""

import asyncio
import json

import pytest

from repro.errors import ServiceError
from repro.service.config import ServiceConfig
from repro.service.executor import ShardExecutor
from repro.service.planner import execute_plan
from repro.service.server import QueryServer, serve_stream
from repro.service.session import Session
from repro.service.snapshot import (
    SNAPSHOT_VERSION,
    decode_snapshot,
    dump_snapshot,
    read_snapshot,
    restore_session,
    save_snapshot,
    snapshot_path,
)
from repro.service.wire import (
    canonical_dumps,
    canonical_loads,
    dump_result_line,
    requests_to_jsonl,
)
from repro.workloads.random_dependencies import random_pd_set
from repro.workloads.random_service import random_service_requests


def run(coro, timeout=120):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def _mixed_stream(count, seed, embed=True):
    return random_service_requests(
        count,
        seed=seed,
        attribute_count=5,
        theory_count=2,
        pds_per_theory=3,
        max_complexity=2,
        kind_weights={"implies": 5, "equivalent": 3, "consistent": 3, "counterexample": 1},
        embed_dependencies=embed,
    )


def _warm_session(seed, requests=40):
    """A session with a non-trivial Γ that has answered a mixed stream."""
    session = Session(random_pd_set(4, 3, seed=seed, max_complexity=2))
    session.execute_many(_mixed_stream(requests, seed=seed + 1, embed=False))
    return session


def _tampered(text, mutate):
    """Re-serialize a snapshot after ``mutate(payload)``, keeping the digest stale."""
    payload = canonical_loads(text)
    mutate(payload)
    return canonical_dumps(payload)


def _resealed(text, mutate):
    """Like :func:`_tampered` but with the digest honestly recomputed."""
    import hashlib

    payload = canonical_loads(text)
    mutate(payload)
    body = {key: value for key, value in payload.items() if key != "digest"}
    payload["digest"] = hashlib.sha256(canonical_dumps(body).encode("utf-8")).hexdigest()
    return canonical_dumps(payload)


@pytest.fixture(scope="module")
def acceptance_stream():
    """The 200-request acceptance mix (same seed as the CLI and server tests)."""
    return random_service_requests(
        200,
        seed=20260730,
        attribute_count=5,
        theory_count=2,
        pds_per_theory=3,
        max_complexity=2,
        kind_weights={"implies": 5, "equivalent": 3, "consistent": 3, "counterexample": 1},
    )


@pytest.fixture(scope="module")
def expected_lines(acceptance_stream):
    return [dump_result_line(r) for r in execute_plan(Session(), acceptance_stream)]


class TestCodecRoundTrip:
    @pytest.mark.parametrize("seed", [1, 7, 20260807])
    def test_dump_restore_dump_is_byte_identical(self, seed):
        warm = _warm_session(seed)
        text = dump_snapshot(warm)
        assert dump_snapshot(restore_session(text)) == text

    def test_encode_decode_encode_is_byte_identical(self):
        warm = _warm_session(3)
        text = dump_snapshot(warm)
        assert canonical_dumps(decode_snapshot(text)) == text

    def test_snapshot_carries_explicit_version_and_digest(self):
        payload = decode_snapshot(dump_snapshot(_warm_session(4)))
        assert payload["v"] == SNAPSHOT_VERSION
        assert payload["kind"] == "session_snapshot"
        assert len(payload["digest"]) == 64

    def test_cold_session_snapshots_lazily(self):
        # A session that never ran a weak-instance query has no normalization
        # artifacts; the snapshot must not compute them just to serialize.
        session = Session(["A = A*B"])
        payload = decode_snapshot(dump_snapshot(session))
        assert payload["normalized"] is None
        assert payload["results"] == []


class TestCodecRejections:
    def test_truncation_is_refused(self):
        text = dump_snapshot(_warm_session(5))
        with pytest.raises(ServiceError):
            decode_snapshot(text[: len(text) // 2])

    def test_bit_flip_fails_the_digest(self):
        text = dump_snapshot(_warm_session(5))
        flipped = _tampered(text, lambda p: p.__setitem__("generation", p["generation"] + 1))
        with pytest.raises(ServiceError, match="digest mismatch"):
            decode_snapshot(flipped)

    def test_version_skew_is_refused(self):
        text = dump_snapshot(_warm_session(5))
        skewed = _resealed(text, lambda p: p.__setitem__("v", SNAPSHOT_VERSION + 1))
        with pytest.raises(ServiceError, match="speaks version"):
            decode_snapshot(skewed)

    def test_missing_version_is_refused_explicitly(self):
        text = dump_snapshot(_warm_session(5))
        missing = _resealed(text, lambda p: p.pop("v"))
        with pytest.raises(ServiceError, match="missing the 'v' version field"):
            decode_snapshot(missing)

    def test_wrong_kind_is_refused(self):
        text = dump_snapshot(_warm_session(5))
        wrong = _resealed(text, lambda p: p.__setitem__("kind", "request"))
        with pytest.raises(ServiceError, match="kind"):
            decode_snapshot(wrong)

    def test_not_json_and_not_an_object_are_refused(self):
        with pytest.raises(ServiceError):
            decode_snapshot("definitely not json")
        with pytest.raises(ServiceError, match="JSON object"):
            decode_snapshot("[1, 2, 3]")

    def test_structurally_damaged_index_is_refused(self):
        # Honest digest, dishonest union-find: a root pointing forward.
        text = dump_snapshot(_warm_session(6))

        def corrupt(payload):
            parent = payload["index"]["parent"]
            if len(parent) >= 2:
                parent[0] = len(parent) - 1

        with pytest.raises(ServiceError, match="implication index"):
            restore_session(_resealed(text, corrupt))


class TestRestoreValidation:
    def test_stale_generation_is_refused(self):
        session = _warm_session(8)
        text = dump_snapshot(session)
        session.add_dependencies(["A = A*B"])
        with pytest.raises(ServiceError, match="stale snapshot"):
            restore_session(text, expected_generation=session.generation)
        # The matching generation restores fine.
        assert restore_session(text, expected_generation=0).generation == 0

    def test_generation_counter_survives_the_round_trip(self):
        session = _warm_session(9)
        session.add_dependencies(["A = A*B"])
        session.add_dependencies(["B = B*C"])
        restored = restore_session(dump_snapshot(session))
        assert restored.generation == session.generation == 2

    def test_mismatched_dependencies_are_refused(self):
        text = dump_snapshot(Session(["A = A*B"]))
        with pytest.raises(ServiceError, match="snapshot Γ mismatch"):
            restore_session(text, expected_dependencies=Session(["B = B*C"]).dependencies)
        restored = restore_session(text, expected_dependencies=Session(["A = A*B"]).dependencies)
        assert [str(pd) for pd in restored.dependencies] == [
            str(pd) for pd in Session(["A = A*B"]).dependencies
        ]


class TestRestoredSessionEquivalence:
    @pytest.mark.parametrize("seed", [21, 22, 23])
    def test_byte_identical_on_session_gamma_streams(self, seed):
        """Bare (dependencies=None) requests hit the restored implication index itself."""
        theory = random_pd_set(4, 3, seed=seed, max_complexity=2)
        warm = Session(theory)
        warm.execute_many(_mixed_stream(30, seed=seed, embed=False))
        restored = restore_session(dump_snapshot(warm))
        # A *fresh* stream: these answers cannot come from the shipped cache.
        fresh = _mixed_stream(60, seed=seed + 1000, embed=False)
        warm_lines = [dump_result_line(r) for r in warm.execute_many(fresh)]
        restored_lines = [dump_result_line(r) for r in restored.execute_many(fresh)]
        assert restored_lines == warm_lines

    def test_byte_identical_on_embedded_gamma_streams(self):
        warm = Session(["A = A*B", "B = B*C"])
        stream = _mixed_stream(80, seed=31)
        warm_lines = [dump_result_line(r) for r in warm.execute_many(stream)]
        restored = restore_session(dump_snapshot(warm))
        assert [dump_result_line(r) for r in restored.execute_many(stream)] == warm_lines

    def test_shipped_result_cache_answers_without_recompute(self):
        warm = Session(["A = A*B"])
        stream = _mixed_stream(40, seed=32)
        warm.execute_many(stream)
        restored = restore_session(dump_snapshot(warm))
        restored.execute_many(stream)
        info = restored.cache_info()
        assert info["hits"] == len(stream)
        assert info["misses"] == 0

    def test_restored_session_grows_like_a_warm_one(self):
        theory = random_pd_set(4, 2, seed=41, max_complexity=2)
        extra = random_pd_set(4, 1, seed=42, max_complexity=2)
        restored = restore_session(dump_snapshot(Session(theory)))
        restored.add_dependencies(extra)
        recomputed = Session(list(theory) + list(extra))
        fresh = _mixed_stream(40, seed=43, embed=False)
        assert [dump_result_line(r) for r in restored.execute_many(fresh)] == [
            dump_result_line(r) for r in recomputed.execute_many(fresh)
        ]

    def test_cache_capacity_is_enforced_on_restore(self):
        warm = Session(["A = A*B"])
        warm.execute_many(_mixed_stream(30, seed=51))
        restored = restore_session(dump_snapshot(warm), result_cache_size=5)
        assert restored.cache_info()["size"] == 5
        assert restored.cache_info()["maxsize"] == 5


class TestShardedRestore:
    def test_two_shard_executor_restores_byte_identically(self, acceptance_stream, expected_lines):
        snapshot = dump_snapshot(Session())
        with ShardExecutor(shards=2, snapshot=snapshot) as executor:
            lines = [dump_result_line(r) for r in executor.execute(acceptance_stream)]
        assert lines == expected_lines

    def test_executor_refuses_a_mismatched_snapshot(self):
        snapshot = dump_snapshot(Session(["A = A*B"]))
        with pytest.raises(ServiceError, match="snapshot Γ mismatch"):
            ShardExecutor(shards=2, dependencies=Session(["B = B*C"]).dependencies, snapshot=snapshot)

    def test_executor_adopts_the_snapshot_gamma(self):
        snapshot = dump_snapshot(Session(["A = A*B", "B = B*C"]))
        executor = ShardExecutor(shards=2, snapshot=snapshot)
        assert len(executor._dependencies) == 2


class TestDeployment:
    def test_server_restores_on_boot_and_saves_on_drain(
        self, tmp_path, acceptance_stream, expected_lines
    ):
        warm = Session()
        warm.execute_many(acceptance_stream[:50])
        save_snapshot(warm, tmp_path)
        config = ServiceConfig(max_wait_ms=5.0, max_batch=32, snapshot_dir=str(tmp_path))
        lines, stats = run(serve_stream(requests_to_jsonl(acceptance_stream), config))
        assert lines == expected_lines
        # Satellite: the session's cache diagnostics ride the stats snapshot.
        assert stats["session_cache"]["maxsize"] == config.result_cache_size
        # Save-on-drain rewrote the snapshot with everything this run learned.
        drained = restore_session(read_snapshot(tmp_path))
        drained.execute_many(acceptance_stream)
        assert drained.cache_info()["misses"] == 0

    def test_save_on_drain_creates_the_snapshot_when_none_existed(self, tmp_path):
        config = ServiceConfig(max_wait_ms=5.0, snapshot_dir=str(tmp_path))
        stream = _mixed_stream(20, seed=61)
        run(serve_stream(requests_to_jsonl(stream), config))
        assert snapshot_path(tmp_path).exists()
        restored = restore_session(read_snapshot(tmp_path))
        restored.execute_many(stream)
        assert restored.cache_info()["misses"] == 0

    def test_control_snapshot_line_exports_a_live_server(self, tmp_path):
        stream = _mixed_stream(10, seed=62)
        request_lines = requests_to_jsonl(stream).strip().split("\n")

        async def scenario():
            config = ServiceConfig(max_wait_ms=5.0, snapshot_dir=str(tmp_path))
            async with QueryServer(config) as server:
                reader, writer = await asyncio.open_connection(server.host, server.port)
                payload = "".join(
                    line + "\n" for line in request_lines + ['{"control":"snapshot"}']
                )
                writer.write(payload.encode("utf-8"))
                await writer.drain()
                writer.write_eof()
                answers = [await reader.readline() for _ in range(len(request_lines) + 1)]
                writer.close()
                return [a.decode("utf-8").rstrip("\n") for a in answers]

        answers = run(scenario())
        control = json.loads(answers[-1])
        assert control["control"] == "snapshot"
        assert control["path"] == str(snapshot_path(tmp_path))
        assert control["generation"] == 0
        assert control["bytes"] > 0
        # The live export is a valid, restorable document.
        restored = restore_session(read_snapshot(tmp_path))
        restored.execute_many(stream)
        assert restored.cache_info()["misses"] == 0

    def test_control_snapshot_without_a_directory_answers_an_error(self):
        async def scenario():
            async with QueryServer(ServiceConfig(max_wait_ms=5.0)) as server:
                reader, writer = await asyncio.open_connection(server.host, server.port)
                writer.write(b'{"control":"snapshot"}\n')
                await writer.drain()
                writer.write_eof()
                raw = await reader.readline()
                writer.close()
                return json.loads(raw.decode("utf-8"))

        answer = run(scenario())
        assert answer["control"] == "snapshot"
        assert "snapshot-dir" in answer["error"]["message"]

    def test_file_cli_saves_then_restores(self, tmp_path, acceptance_stream, expected_lines):
        from repro.service.cli import serve_lines

        jsonl = [line for line in requests_to_jsonl(acceptance_stream).split("\n") if line]
        config = ServiceConfig(snapshot_dir=str(tmp_path))
        first, first_stats = serve_lines(jsonl, config=config)
        assert first == expected_lines
        assert first_stats["snapshot"] == str(snapshot_path(tmp_path))
        # Second run boots from the saved snapshot and answers byte-identically.
        second, _ = serve_lines(jsonl, config=config)
        assert second == expected_lines

    def test_config_session_factory_restores_from_directory(self, tmp_path):
        warm = Session(["A = A*B"])
        save_snapshot(warm, tmp_path)
        config = ServiceConfig(snapshot_dir=str(tmp_path))
        assert [str(pd) for pd in config.make_session().dependencies] == [
            str(pd) for pd in warm.dependencies
        ]
        # A configured Γ that contradicts the snapshot is refused.
        mismatched = ServiceConfig(
            dependencies=tuple(Session(["B = B*C"]).dependencies), snapshot_dir=str(tmp_path)
        )
        with pytest.raises(ServiceError, match="snapshot Γ mismatch"):
            mismatched.make_session()
