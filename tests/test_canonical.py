"""Tests for repro.partitions.canonical: I(r), R(I), and their round-trips (§4.1)."""

import pytest
from hypothesis import given, settings

from repro.errors import PartitionError
from repro.partitions.assumptions import satisfies_eap
from repro.partitions.canonical import (
    canonical_interpretation,
    canonical_relation,
    canonical_roundtrip,
    eap_extension,
    restrict_to_attributes,
)
from repro.partitions.interpretation import PartitionInterpretation
from repro.lattice.interpretation_lattice import InterpretationLattice
from repro.relational.relations import Relation
from repro.relational.schema import RelationScheme

from tests.conftest import small_relations


class TestCanonicalInterpretation:
    def test_populations_are_tuple_identifiers(self, employee_relation):
        interpretation = canonical_interpretation(employee_relation)
        assert interpretation.population("A") == frozenset(range(1, len(employee_relation) + 1))

    def test_always_satisfies_eap(self, employee_relation):
        assert satisfies_eap(canonical_interpretation(employee_relation))

    def test_satisfies_its_own_relation(self, employee_relation):
        interpretation = canonical_interpretation(employee_relation)
        assert interpretation.satisfies_relation(employee_relation)

    def test_blocks_group_tuples_by_symbol(self):
        relation = Relation.from_strings("r", "AB", ["a.b1", "a.b2"])
        interpretation = canonical_interpretation(relation)
        assert interpretation.meaning("A").block_count() == 1
        assert interpretation.meaning("B").block_count() == 2

    def test_empty_relation_rejected(self):
        with pytest.raises(PartitionError):
            canonical_interpretation(Relation(RelationScheme("r", "A"), []))

    def test_custom_identifiers_must_be_unique(self, employee_relation):
        with pytest.raises(PartitionError):
            canonical_interpretation(employee_relation, identifier=lambda row: 1)


class TestCanonicalRelation:
    def test_roundtrip_recovers_relation(self, employee_relation, figure1_relation):
        # R(I(r)) = r (remark after Definition 6).
        for relation in (employee_relation, figure1_relation):
            assert canonical_roundtrip(relation).rows == relation.rows

    @given(small_relations())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, relation):
        assert canonical_roundtrip(relation).rows == relation.rows

    def test_padding_symbols_for_missing_population_elements(self):
        interpretation = PartitionInterpretation.from_named_blocks(
            {"A": {"a": {1, 2}}, "B": {"b": {2, 3}}}
        )
        relation = canonical_relation(interpretation)
        # element 3 is outside p_A, so its tuple gets a unique padding symbol under A
        rows = {str(row) for row in relation.rows}
        assert any("@A" in row for row in rows)
        assert len(relation) == 3

    def test_lattice_preserved_for_eap_interpretations(self, employee_relation):
        # If EAP holds in I then L(I(R(I))) = L(I) (remark before Theorem 3).
        interpretation = canonical_interpretation(employee_relation)
        back = canonical_interpretation(canonical_relation(interpretation))
        first = InterpretationLattice.from_interpretation(interpretation)
        second = InterpretationLattice.from_interpretation(back)
        assert first.isomorphic_to(second)


class TestEapExtension:
    def test_extension_satisfies_eap_and_preserves_pds(self):
        interpretation = PartitionInterpretation.from_named_blocks(
            {"A": {"a1": {1}, "a2": {2}}, "B": {"b": {1, 2, 3}}}
        )
        assert not satisfies_eap(interpretation)
        extended = eap_extension(interpretation)
        assert satisfies_eap(extended)
        # The homomorphism argument of Theorem 7: PDs satisfied by I are satisfied by J.
        for pd in ("A = A*B", "A <= B"):
            if interpretation.satisfies_pd(pd):
                assert extended.satisfies_pd(pd)

    def test_restrict_to_attributes(self):
        interpretation = PartitionInterpretation.from_named_blocks(
            {"A": {"a": {1}}, "B": {"b": {1}}}
        )
        restricted = restrict_to_attributes(interpretation, interpretation.attributes - {"B"})
        assert set(restricted.attributes) == {"A"}
        with pytest.raises(PartitionError):
            restrict_to_attributes(restricted, interpretation.attributes)
