"""Tests for repro.consistency.normalization (the §6.2 pipeline: E → E' → E⁺ → F)."""

import pytest

from repro.consistency.normalization import (
    binarize,
    functional_part,
    normalize_dependencies,
    validate_only_fpds,
)
from repro.errors import ConsistencyError
from repro.implication.alg import pd_implies
from repro.relational.functional_dependencies import FunctionalDependency, implies


class TestBinarize:
    def test_fpd_stays_small(self):
        equations, aliases, fresh = binarize(["A = A*B"])
        # A = A*B: the right side becomes a fresh attribute Z with Z = A*B and alias A = Z.
        assert len(equations) == 1 and equations[0][0] == "*"
        assert len(aliases) == 1
        assert len(fresh) == 1

    def test_nested_expression_introduces_multiple_fresh_attributes(self):
        equations, aliases, fresh = binarize(["A = (B + C) * D"])
        assert len(fresh) == 2  # one for B+C, one for (B+C)*D
        ops = sorted(op for op, *_ in equations)
        assert ops == ["*", "+"]

    def test_fresh_names_avoid_existing_attributes(self):
        equations, aliases, fresh = binarize(["Z1 = A + B"])
        assert "Z1" not in fresh  # Z1 is taken by the input
        assert all(name not in {"Z1", "A", "B"} for name in fresh)

    def test_attribute_equality_is_alias_only(self):
        equations, aliases, fresh = binarize(["A = B"])
        assert equations == [] and aliases == [("A", "B")] and fresh == []


class TestNormalizeDependencies:
    def test_pure_fpd_set_produces_equivalent_fds(self):
        normalized = normalize_dependencies(["A = A*B", "B = B*C"])
        assert not normalized.sum_constraints
        # The FD part must imply A -> B, B -> C and (transitively) A -> C.
        assert implies(normalized.fds, FunctionalDependency("A", "B"))
        assert implies(normalized.fds, FunctionalDependency("B", "C"))
        assert implies(normalized.fds, FunctionalDependency("A", "C"))
        assert not implies(normalized.fds, FunctionalDependency("C", "A"))

    def test_sum_pd_produces_sum_constraint_and_order_fds(self):
        normalized = normalize_dependencies(["C = A + B"])
        # A <= C and B <= C become FDs; one sum constraint Z <= A+B (Z aliased to C) survives.
        assert implies(normalized.fds, FunctionalDependency("A", "C"))
        assert implies(normalized.fds, FunctionalDependency("B", "C"))
        assert len(normalized.sum_constraints) == 1

    def test_sum_constraint_pruned_when_order_known(self):
        # With A <= B also in E, C <= A+B is subsumed by C <= B and must be pruned.
        normalized = normalize_dependencies(["C = A + B", "A = A*B"])
        assert normalized.sum_constraints == []
        assert implies(normalized.fds, FunctionalDependency("C", "B"))

    def test_closure_pairs_recorded(self):
        normalized = normalize_dependencies(["A = A*B", "B = B*C"])
        assert ("A", "C") in normalized.attribute_closure_pairs

    def test_universe_includes_fresh_attributes(self):
        normalized = normalize_dependencies(["A = (B + C) * D"])
        assert len(normalized.fresh_attributes) >= 2
        assert set(normalized.fresh_attributes) <= set(normalized.universe)

    def test_no_trivial_fds_emitted(self):
        normalized = normalize_dependencies(["A = A*B", "C = A + B"])
        assert all(not fd.is_trivial() for fd in normalized.fds)

    def test_functional_part_helper(self):
        assert functional_part(["A = A*B"]) == normalize_dependencies(["A = A*B"]).fds

    def test_normalized_fds_are_consequences_of_e(self):
        # Soundness of the pipeline: every produced FD, read as an FPD over the
        # extended universe, is implied by E' (original E + binarization equations).
        E = ["C = A + B", "A = A*D"]
        normalized = normalize_dependencies(E)
        from repro.consistency.normalization import binarize as _binarize
        from repro.dependencies.pd import PartitionDependency
        from repro.expressions.ast import Attr, Product, Sum

        equations, aliases, _ = _binarize(E)
        e_prime = [PartitionDependency.parse(pd) for pd in E]
        for left, right in aliases:
            e_prime.append(PartitionDependency(Attr(left), Attr(right)))
        for op, c, a, b in equations:
            node = Product(Attr(a), Attr(b)) if op == "*" else Sum(Attr(a), Attr(b))
            e_prime.append(PartitionDependency(Attr(c), node))
        for fd in normalized.fds:
            from repro.dependencies.conversion import fd_to_pd

            assert pd_implies(e_prime, fd_to_pd(fd)), str(fd)


class TestValidateOnlyFpds:
    def test_accepts_fpds_in_any_of_the_three_forms(self):
        fds = validate_only_fpds(["A = A*B", "C = C + B", "A <= D"])
        assert FunctionalDependency("A", "B") in fds
        assert FunctionalDependency("B", "C") in fds
        assert FunctionalDependency("A", "D") in fds

    def test_rejects_general_pds(self):
        with pytest.raises(ConsistencyError):
            validate_only_fpds(["C = A + B"])

    def test_skips_trivial_fpds(self):
        # X = X·Y with Y ⊆ X holds in every interpretation and yields no FD.
        assert validate_only_fpds(["A*B = A*B*A"]) == []

    def test_reversed_sides_still_recognized(self):
        # "A*B = A" is the FPD A ≤ B with its sides swapped, i.e. the FD A -> B.
        assert validate_only_fpds(["A*B = A"]) == [FunctionalDependency("A", "B")]
