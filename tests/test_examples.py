"""Smoke tests: every example program runs to completion through its public ``main()``.

The examples double as end-to-end integration tests of the public API; they
are executed in-process (not via subprocess) so coverage tools see them and
failures produce useful tracebacks.  Stdout is captured by pytest.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load_module(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"examples_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_directory_has_expected_programs(self):
        names = {path.stem for path in EXAMPLE_FILES}
        assert "quickstart" in names
        assert len(names) >= 3

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_runs(self, path, capsys):
        module = _load_module(path)
        assert hasattr(module, "main"), f"{path.name} must define a main() function"
        module.main()
        captured = capsys.readouterr()
        assert captured.out.strip(), f"{path.name} should print something"
        assert "Traceback" not in captured.out
