"""Tests for repro.expressions: AST, parser, printers, evaluation."""

import pytest
from hypothesis import given, settings

from repro.errors import ExpressionError
from repro.expressions.ast import (
    Attr,
    Product,
    Sum,
    all_subexpressions,
    as_expression,
    attr,
    attribute_set_expression,
    attrs,
    product_of,
    sum_of,
)
from repro.expressions.evaluation import evaluate
from repro.expressions.parser import parse_expression, tokenize
from repro.expressions.printer import to_infix, to_paper, to_prefix
from repro.partitions.interpretation import PartitionInterpretation

from tests.conftest import expressions


class TestAst:
    def test_operator_sugar(self):
        A, B = attrs("A", "B")
        assert A * B == Product(A, B)
        assert A + B == Sum(A, B)

    def test_structural_equality_is_syntactic(self):
        A, B = attrs("A", "B")
        assert A * B != B * A  # different strings, same semantics
        assert A * B == Attr("A") * Attr("B")

    def test_hashable(self):
        A, B = attrs("A", "B")
        assert len({A * B, A * B, A + B}) == 2

    def test_attributes_and_sizes(self):
        expression = parse_expression("A * (B + A)")
        assert set(expression.attributes()) == {"A", "B"}
        assert expression.complexity() == 2
        assert expression.size() == 5

    def test_subexpressions(self):
        expression = parse_expression("A * (B + C)")
        subs = set(expression.subexpressions())
        assert Attr("A") in subs and parse_expression("B + C") in subs and expression in subs
        assert len(subs) == 5

    def test_all_subexpressions_union(self):
        exprs = [parse_expression("A*B"), parse_expression("B+C")]
        assert len(all_subexpressions(exprs)) == 5

    def test_dual_swaps_operators(self):
        expression = parse_expression("A * (B + C)")
        assert expression.dual() == parse_expression("A + (B * C)")
        assert expression.dual().dual() == expression

    def test_is_product_of_attributes(self):
        assert parse_expression("A*B*C").is_product_of_attributes()
        assert not parse_expression("A*(B+C)").is_product_of_attributes()

    def test_product_of_and_sum_of(self):
        assert product_of("ABC") == parse_expression("(A*B)*C")
        assert sum_of(["A", "B"]) == parse_expression("A+B")
        with pytest.raises(ExpressionError):
            product_of([])

    def test_attribute_set_expression_sorted(self):
        assert attribute_set_expression("CBA") == parse_expression("(A*B)*C")

    def test_invalid_operand_rejected(self):
        with pytest.raises(ExpressionError):
            attr("A") * "B"  # type: ignore[operator]

    def test_as_expression_dispatch(self):
        assert as_expression("A + B") == Sum(Attr("A"), Attr("B"))
        assert as_expression(Attr("A")) == Attr("A")
        with pytest.raises(ExpressionError):
            as_expression(42)


class TestParser:
    def test_precedence_product_binds_tighter(self):
        assert parse_expression("A + B * C") == Sum(Attr("A"), Product(Attr("B"), Attr("C")))

    def test_parentheses_override(self):
        assert parse_expression("(A + B) * C") == Product(Sum(Attr("A"), Attr("B")), Attr("C"))

    def test_left_associativity(self):
        assert parse_expression("A * B * C") == Product(Product(Attr("A"), Attr("B")), Attr("C"))

    def test_dot_and_middle_dot_as_product(self):
        assert parse_expression("A . B") == parse_expression("A · B") == parse_expression("A * B")

    def test_long_attribute_names(self):
        expression = parse_expression("employee_nr * manager_nr")
        assert set(expression.attributes()) == {"employee_nr", "manager_nr"}

    def test_errors(self):
        for bad in ["", "A +", "(A + B", "A ++ B", "A % B", ")A("]:
            with pytest.raises(ExpressionError):
                parse_expression(bad)

    def test_tokenize_positions(self):
        tokens = tokenize("A*(B+C)")
        assert [t.kind for t in tokens] == ["attr", "*", "(", "attr", "+", "attr", ")"]


class TestPrinters:
    def test_infix_roundtrip_simple(self):
        for text in ["A", "A * B", "A + B * C", "(A + B) * C", "A * (B + C) + D"]:
            expression = parse_expression(text)
            assert parse_expression(to_infix(expression)) == expression

    @given(expressions())
    @settings(max_examples=100)
    def test_infix_roundtrip_property(self, expression):
        assert parse_expression(to_infix(expression)) == expression

    def test_paper_rendering(self):
        assert to_paper(parse_expression("A*B + C")) == "((A * B) + C)"
        assert to_paper(parse_expression("A*B"), product_symbol="·") == "(A · B)"

    def test_prefix_rendering(self):
        assert to_prefix(parse_expression("A * (B + C)")) == "(* A (+ B C))"


class TestEvaluation:
    def test_evaluate_matches_interpretation_meaning(self):
        interpretation = PartitionInterpretation.from_named_blocks(
            {"A": {"a1": {1}, "a2": {2}}, "B": {"b": {1, 2}}}
        )
        assert evaluate("A + B", interpretation) == interpretation.meaning("A + B")
        assert evaluate(parse_expression("A * B"), interpretation) == interpretation.meaning("A * B")
