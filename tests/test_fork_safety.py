"""Fork/spawn safety of the global intern and memo tables (PR 5 satellite).

The hash-consed AST (:mod:`repro.expressions.ast`) and the Whitman ``≤_id``
memo (:mod:`repro.implication.identities`) are process-global weak tables.
Multiprocessing workers — the service's shard executor — must therefore:

* **re-intern correctly in children**: expressions pickled across the
  process boundary re-intern through their constructors, so inside any
  worker ``decode(pickle) is parse(render)`` — one interned object per
  syntax tree, never a stale alias of the parent's;
* **start forked children with a clean ``≤_id`` memo**: a fork can land
  while another thread is mid-recursion, between the cycle-guard ``False``
  seed and the final verdict — the child would inherit the seed as a
  "memoized" wrong answer.  The ``os.register_at_fork`` hook clears the memo
  in the child (and rebuilds the intern tables from their live items), which
  these tests observe behaviorally: a parent-warmed cache reports **zero**
  pairs inside a fork child.

Everything a child asserts is shipped back as data and re-asserted in the
parent, so a failing child fails the test rather than just a worker.
"""

import multiprocessing
import os
import pickle

import pytest

from repro.expressions.ast import (
    Attr,
    Product,
    Sum,
    _rebuild_intern_tables_after_fork,
    interned_counts,
)
from repro.expressions.parser import parse_expression
from repro.expressions.printer import to_infix
from repro.implication.identities import (
    identically_leq,
    identically_leq_cold,
    identity_cache_info,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

#: Pairs probed on both sides of every process boundary.
PROBE_TEXTS = [
    ("A * B", "A"),
    ("A", "A + B"),
    ("A * (B + C)", "A * B + A * C"),
    ("(A + B) * (A + C)", "A + B * C"),
]


def _child_report(payload: bytes) -> dict:
    """Runs inside a worker: re-intern, probe the memo, return observations."""
    expressions = pickle.loads(payload)  # re-interns via __reduce__
    report = {
        "cache_pairs_at_start": identity_cache_info()["pairs"],
        "reinterned_identity": [],
        "verdicts": [],
        "fresh_interning_ok": Attr("A") is Attr("A")
        and Product(Attr("A"), Attr("B")) is Product(Attr("A"), Attr("B")),
    }
    for expression in expressions:
        rebuilt = parse_expression(to_infix(expression))
        report["reinterned_identity"].append(rebuilt is expression)
    for left_text, right_text in PROBE_TEXTS:
        left = parse_expression(left_text)
        right = parse_expression(right_text)
        report["verdicts"].append(identically_leq(left, right))
    return report


def _run_in_child(start_method: str, payload: bytes) -> dict:
    context = multiprocessing.get_context(start_method)
    with context.Pool(1) as pool:
        return pool.apply(_child_report, (payload,))


def _parent_payload() -> bytes:
    expressions = [
        parse_expression("A * (B + C)"),
        parse_expression("(A + B) * (A + C) * D"),
        Sum(Product(Attr("A"), Attr("B")), Attr("C")),
    ]
    return pickle.dumps(expressions)


def _oracle_verdicts() -> list:
    return [
        identically_leq_cold(parse_expression(left), parse_expression(right))
        for left, right in PROBE_TEXTS
    ]


@pytest.mark.skipif(not HAS_FORK, reason="platform has no fork start method")
class TestForkChildren:
    def test_fork_child_reinterns_and_starts_with_clean_memo(self):
        payload = _parent_payload()
        # Warm the parent memo so a dirty inheritance would be visible.
        for left, right in PROBE_TEXTS:
            identically_leq(parse_expression(left), parse_expression(right))
        assert identity_cache_info()["pairs"] > 0

        parent_pairs_before = identity_cache_info()["pairs"]
        report = _run_in_child("fork", payload)

        # The at-fork hook cleared the child's memo despite the warm parent.
        assert report["cache_pairs_at_start"] == 0
        assert all(report["reinterned_identity"])
        assert report["fresh_interning_ok"]
        assert report["verdicts"] == _oracle_verdicts()
        # The parent's own state is untouched by the child's lifecycle.
        assert identity_cache_info()["pairs"] >= parent_pairs_before

    def test_fork_child_intern_tables_stay_self_consistent(self):
        report = _run_in_child("fork", _parent_payload())
        assert all(report["reinterned_identity"])
        assert report["fresh_interning_ok"]


class TestSpawnChildren:
    def test_spawn_child_reinterns_from_scratch(self):
        report = _run_in_child("spawn", _parent_payload())
        assert report["cache_pairs_at_start"] == 0
        assert all(report["reinterned_identity"])
        assert report["fresh_interning_ok"]
        assert report["verdicts"] == _oracle_verdicts()


def _restored_child_report(snapshot_text: str, encoded_requests: list) -> dict:
    """Runs inside a worker: restore a session from snapshot text, answer a stream.

    Restoring *inside* the child is the sharp case: every snapshot expression
    re-interns through the parser against the child's (rebuilt, post-fork)
    weak tables, and the restored index must agree with them.
    """
    from repro.service.snapshot import restore_session
    from repro.service.wire import dump_result_line, load_request_line

    session = restore_session(snapshot_text)
    requests = [load_request_line(line) for line in encoded_requests]
    lines = [dump_result_line(r) for r in session.execute_many(requests)]
    probe = parse_expression(to_infix(session.dependencies[0].left))
    return {
        "lines": lines,
        "generation": session.generation,
        "reinterned_identity": probe is session.dependencies[0].left,
    }


def _snapshot_fixture():
    from repro.service.session import Session
    from repro.service.snapshot import dump_snapshot
    from repro.service.wire import dump_request_line, dump_result_line
    from repro.workloads.random_service import random_service_requests

    warm = Session(["A = A*B", "B = B*C"])
    stream = random_service_requests(
        30, seed=77, attribute_count=4, theory_count=1, pds_per_theory=2, max_complexity=2
    )
    expected = [dump_result_line(r) for r in warm.execute_many(stream)]
    return dump_snapshot(warm), [dump_request_line(r) for r in stream], expected


class TestRestoredSessionsInChildren:
    """Snapshot restore composes with the fork/spawn safety story (PR 7)."""

    @pytest.mark.skipif(not HAS_FORK, reason="platform has no fork start method")
    def test_fork_child_restores_byte_identically(self):
        snapshot, encoded, expected = _snapshot_fixture()
        context = multiprocessing.get_context("fork")
        with context.Pool(1) as pool:
            report = pool.apply(_restored_child_report, (snapshot, encoded))
        assert report["lines"] == expected
        assert report["generation"] == 0
        assert report["reinterned_identity"]

    def test_spawn_child_restores_byte_identically(self):
        snapshot, encoded, expected = _snapshot_fixture()
        context = multiprocessing.get_context("spawn")
        with context.Pool(1) as pool:
            report = pool.apply(_restored_child_report, (snapshot, encoded))
        assert report["lines"] == expected
        assert report["reinterned_identity"]

    @pytest.mark.skipif(not HAS_FORK, reason="platform has no fork start method")
    def test_forking_a_restored_session_keeps_children_consistent(self):
        # The other direction: restore in the *parent*, then fork workers that
        # re-intern the same expressions from scratch.
        from repro.service.snapshot import restore_session
        from repro.service.wire import dump_result_line, load_request_line

        snapshot, encoded, expected = _snapshot_fixture()
        restored = restore_session(snapshot)
        requests = [load_request_line(t) for t in encoded]
        assert [dump_result_line(r) for r in restored.execute_many(requests)] == expected
        report = _run_in_child("fork", _parent_payload())
        assert all(report["reinterned_identity"])
        assert report["verdicts"] == _oracle_verdicts()


class TestAtForkHookMechanics:
    def test_register_at_fork_is_available_here(self):
        # The hooks are what the skipif-guarded tests rely on; if this ever
        # fails the fork tests above would be silently meaningless.
        assert hasattr(os, "register_at_fork") == (os.name == "posix")

    def test_rebuild_preserves_live_nodes_and_identity(self):
        before = parse_expression("A * (B + C) * D")
        counts_before = interned_counts()
        _rebuild_intern_tables_after_fork()
        assert interned_counts() == counts_before
        assert parse_expression("A * (B + C) * D") is before
        assert Attr("A") is before.left.left  # type: ignore[attr-defined]

    def test_rebuild_keeps_tables_weak(self):
        probe = parse_expression("Zq1 * Zq2")
        _rebuild_intern_tables_after_fork()
        assert parse_expression("Zq1 * Zq2") is probe
        count_with_probe = interned_counts()["Product"]
        del probe
        import gc

        gc.collect()
        assert interned_counts()["Product"] <= count_with_probe
