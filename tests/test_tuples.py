"""Tests for repro.relational.tuples."""

import pytest

from repro.errors import SchemaError
from repro.relational.attributes import AttributeSet
from repro.relational.tuples import Row, row_from_string


class TestRowConstruction:
    def test_from_mapping_and_kwargs_agree(self):
        assert Row({"A": "a", "B": "b"}) == Row(A="a", B="b")

    def test_empty_row_rejected(self):
        with pytest.raises(SchemaError):
            Row({})

    def test_invalid_symbol_rejected(self):
        with pytest.raises(SchemaError):
            Row({"A": ""})

    def test_row_from_string_uses_sorted_attribute_order(self):
        row = row_from_string("ABC", "1.2.0")
        assert row["A"] == "1" and row["B"] == "2" and row["C"] == "0"

    def test_row_from_string_wrong_arity(self):
        with pytest.raises(SchemaError):
            row_from_string("ABC", "1.2")


class TestRowBehaviour:
    def test_mapping_protocol(self):
        row = Row(A="a", B="b")
        assert len(row) == 2
        assert set(row) == {"A", "B"}
        assert row["A"] == "a"

    def test_missing_attribute_raises_schema_error(self):
        with pytest.raises(SchemaError):
            Row(A="a")["B"]

    def test_attributes_property(self):
        assert Row(A="a", B="b").attributes == AttributeSet("AB")

    def test_restrict(self):
        row = Row(A="a", B="b", C="c")
        assert row.restrict("AC") == Row(A="a", C="c")

    def test_restrict_missing_attribute(self):
        with pytest.raises(SchemaError):
            Row(A="a").restrict("AB")

    def test_restrict_empty_rejected(self):
        with pytest.raises(SchemaError):
            Row(A="a").restrict(AttributeSet())

    def test_values_on_sorted_order(self):
        row = Row(A="a", B="b", C="c")
        assert row.values_on("CA") == ("a", "c")

    def test_agrees_with(self):
        t = Row(A="a", B="b")
        h = Row(A="a", B="x")
        assert t.agrees_with(h, "A")
        assert not t.agrees_with(h, "AB")

    def test_merge_compatible(self):
        assert Row(A="a", B="b").merge(Row(B="b", C="c")) == Row(A="a", B="b", C="c")

    def test_merge_conflicting(self):
        with pytest.raises(SchemaError):
            Row(A="a", B="b").merge(Row(B="x"))

    def test_replace(self):
        assert Row(A="a", B="b").replace(B="b2") == Row(A="a", B="b2")

    def test_replace_unknown_attribute(self):
        with pytest.raises(SchemaError):
            Row(A="a").replace(B="b")

    def test_hash_and_equality(self):
        assert hash(Row(A="a", B="b")) == hash(Row(B="b", A="a"))
        assert Row(A="a") != Row(A="a2")

    def test_equality_with_plain_mapping(self):
        assert Row(A="a") == {"A": "a"}

    def test_str_is_compact_dot_form(self):
        assert str(Row(A="1", B="2", C="0")) == "1.2.0"
