"""Tests for the indexed chase engine and the tableau merge-event hook.

The naive :func:`chase_fds` is kept as the oracle (the
``alg_closure_naive``/``alg_closure`` pattern): the engine must produce
byte-identical chased tableaux on randomized workloads, and the merge-event
hook must report exactly the class merges — never path compression.
"""

import random

import pytest

from repro.errors import DependencyError
from repro.relational.chase import (
    Tableau,
    TableauValue,
    chase_database,
    chase_fds,
    representative_instance,
)
from repro.relational.chase_engine import (
    ChaseEngine,
    chase_database_indexed,
    chase_fds_indexed,
    chase_many,
)
from repro.relational.database import Database
from repro.relational.functional_dependencies import FunctionalDependency, parse_fd_set
from repro.relational.relations import Relation
from repro.relational.weak_instance import weak_instance_consistency
from repro.workloads.random_dependencies import random_fd_set
from repro.workloads.random_relations import chained_consistent_database, random_database


class TestMergeEventHook:
    def test_equate_fires_merge_event(self):
        tableau = Tableau("AB")
        i = tableau.add_row({"A": "a"})
        events = []
        tableau.add_merge_listener(lambda winner, loser: events.append((winner, loser)))
        null = tableau.value(i, "B")
        constant = tableau.value(i, "A")
        assert tableau.equate(null, constant)
        assert events == [(constant, null)]

    def test_no_event_for_noop_equate(self):
        tableau = Tableau("A")
        i = tableau.add_row({"A": "a"})
        events = []
        tableau.add_merge_listener(lambda winner, loser: events.append((winner, loser)))
        value = tableau.value(i, "A")
        assert tableau.equate(value, value)
        assert events == []

    def test_no_event_for_failed_equate(self):
        tableau = Tableau("A")
        events = []
        tableau.add_merge_listener(lambda winner, loser: events.append((winner, loser)))
        assert not tableau.equate(TableauValue.constant("a"), TableauValue.constant("b"))
        assert events == []

    def test_no_event_from_path_compression(self):
        # Build a chain n1 <- n2 <- n3 by merging, then clear the log: a find
        # on the deep element compresses the path but must not fire events.
        tableau = Tableau("ABC")
        i = tableau.add_row({})
        a, b, c = (tableau.value(i, x) for x in "ABC")
        events = []
        tableau.add_merge_listener(lambda winner, loser: events.append((winner, loser)))
        tableau.equate(b, c)
        tableau.equate(a, b)
        merge_count = len(events)
        assert merge_count == 2
        assert tableau.value(i, "C") == tableau.value(i, "A")  # find + compression
        assert len(events) == merge_count

    def test_removed_listener_stops_firing(self):
        tableau = Tableau("AB")
        i = tableau.add_row({"A": "a"})
        events = []
        listener = lambda winner, loser: events.append((winner, loser))  # noqa: E731
        tableau.add_merge_listener(listener)
        tableau.remove_merge_listener(listener)
        tableau.equate(tableau.value(i, "B"), tableau.value(i, "A"))
        assert events == []

    def test_constant_always_wins_election(self):
        tableau = Tableau("AB")
        i = tableau.add_row({"B": "b"})
        null = tableau.value(i, "A")
        constant = tableau.value(i, "B")
        events = []
        tableau.add_merge_listener(lambda winner, loser: events.append((winner, loser)))
        # Argument order must not matter: the constant is elected either way.
        assert tableau.equate(constant, null)
        assert events == [(constant, null)]
        assert tableau.value(i, "A") == constant

    def test_null_election_is_order_independent(self):
        # Whichever argument order is used, the smaller null label survives.
        for flip in (False, True):
            tableau = Tableau("AB")
            i = tableau.add_row({})
            first = tableau.value(i, "A")  # n1
            second = tableau.value(i, "B")  # n2
            pair = (second, first) if flip else (first, second)
            assert tableau.equate(*pair)
            assert tableau.value(i, "B") == first


class TestEngineMatchesNaiveOracle:
    """Regression for the merge-hook/delta machinery: engine == naive, always."""

    def test_randomized_cross_check(self):
        for seed in range(60):
            rng = random.Random(seed)
            database = random_database(
                relation_count=rng.randint(1, 4),
                universe_size=rng.randint(2, 6),
                attributes_per_relation=rng.randint(1, 4),
                tuples_per_relation=rng.randint(1, 6),
                domain_size=rng.randint(1, 4),
                seed=seed,
            )
            fds = random_fd_set(rng.randint(2, 6), rng.randint(1, 5), seed=seed)
            naive = chase_database(database, fds)
            indexed = chase_database_indexed(database, fds)
            assert naive.consistent == indexed.consistent, f"seed {seed}"
            if naive.consistent:
                left = naive.tableau.to_relation()
                right = indexed.tableau.to_relation()
                assert left == right, f"seed {seed}"
                # Byte-identical rendering, not just set equality.
                assert str(left) == str(right), f"seed {seed}"

    def test_deep_chase_cross_check(self):
        database, fds = chained_consistent_database(
            universe_size=6, relation_count=8, tuples_per_relation=20, domain_size=8, seed=3
        )
        naive = chase_database(database, fds)
        indexed = chase_database_indexed(database, fds)
        assert naive.consistent and indexed.consistent
        assert str(naive.tableau.to_relation()) == str(indexed.tableau.to_relation())
        assert naive.steps == indexed.steps  # same forced merges, counted once each

    def test_same_tableau_object_both_ways(self):
        # Chasing two fresh representative instances of the same database must
        # agree cell-for-cell (same null counter, same election).
        database = Database(
            [
                Relation.from_strings("R", "AB", ["a1.b1", "a2.b1"]),
                Relation.from_strings("S", "BC", ["b1.c1"]),
            ]
        )
        fds = parse_fd_set(["B -> AC"])
        first = representative_instance(database)
        second = representative_instance(database)
        naive = chase_fds(first, fds)
        indexed = chase_fds_indexed(second, fds)
        assert naive.consistent == indexed.consistent
        assert naive.tableau.rows_as_values() == indexed.tableau.rows_as_values()


class TestChaseEdgeCases:
    def test_empty_relations_database(self):
        database = Database([Relation.from_strings("R", "AB", [])])
        for result in (
            chase_database(database, parse_fd_set(["A -> B"])),
            chase_database_indexed(database, parse_fd_set(["A -> B"])),
        ):
            assert result.consistent
            assert result.steps == 0
            assert result.tableau.row_count == 0

    def test_empty_tableau_chase(self):
        tableau = Tableau("AB")
        result = chase_fds_indexed(tableau, parse_fd_set(["A -> B"]))
        assert result.consistent and result.steps == 0

    def test_no_fds_is_trivially_consistent(self):
        database = Database([Relation.from_strings("R", "AB", ["a.b", "a.b2"])])
        result = chase_database_indexed(database, [])
        assert result.consistent and result.steps == 0

    def test_fd_with_empty_lhs_rejected_at_construction(self):
        # The FD type itself forbids an empty determinant, so both chases are
        # shielded from the degenerate "every row agrees on {}" case.
        with pytest.raises(DependencyError):
            FunctionalDependency([], ["A"])
        with pytest.raises(DependencyError):
            FunctionalDependency(["A"], [])

    def test_nulls_promoted_to_constants(self):
        # S's tuple lacks B; the chase must promote its padding null to b1.
        database = Database(
            [
                Relation.from_strings("R", "AB", ["a1.b1"]),
                Relation.from_strings("S", "AC", ["a1.c1"]),
            ]
        )
        result = chase_database_indexed(database, parse_fd_set(["A -> B"]))
        assert result.consistent
        values = result.tableau.rows_as_values()
        assert all(row["B"] == TableauValue.constant("b1") for row in values)

    def test_constant_clash_reports_violation(self):
        database = Database([Relation.from_strings("S", "BC", ["b1.c1", "b1.c2"])])
        result = chase_database_indexed(database, parse_fd_set(["B -> C"]))
        assert not result.consistent
        assert result.violation is not None
        assert result.violation.lhs == frozenset({"B"})

    def test_chase_is_idempotent(self):
        # chase(chase(d)) == chase(d): re-chasing the materialized witness
        # (nulls rendered as fresh symbols) changes nothing.
        database, fds = chained_consistent_database(
            universe_size=5, relation_count=6, tuples_per_relation=10, domain_size=6, seed=11
        )
        first = weak_instance_consistency(database, fds)
        assert first.consistent and first.witness is not None
        rechased = chase_database_indexed(Database.single(first.witness), fds)
        assert rechased.consistent
        assert rechased.steps == 0
        assert rechased.tableau.to_relation(first.witness.name) == first.witness

    def test_engine_extends_universe_with_fd_attributes(self):
        database = Database([Relation.from_strings("R", "AB", ["a.b"])])
        result = chase_database_indexed(database, parse_fd_set(["A -> C"]))
        assert result.consistent
        assert "C" in result.tableau.attributes


class TestBatchApi:
    def test_chase_many_matches_one_shot(self):
        fds = parse_fd_set(["A -> B", "B -> C"])
        databases = [
            Database([Relation.from_strings("R", "AB", ["a1.b1"])]),
            Database([Relation.from_strings("S", "BC", ["b1.c1", "b1.c2"])]),
            Database(
                [
                    Relation.from_strings("R", "AB", ["a1.b1"]),
                    Relation.from_strings("S", "BC", ["b1.c1"]),
                ]
            ),
        ]
        results = chase_many(databases, fds)
        assert [r.consistent for r in results] == [True, False, True]
        for database, result in zip(databases, results):
            oracle = chase_database(database, fds)
            assert oracle.consistent == result.consistent
            if oracle.consistent:
                assert str(oracle.tableau.to_relation()) == str(result.tableau.to_relation())

    def test_engine_is_reusable_and_stateless_across_chases(self):
        engine = ChaseEngine(parse_fd_set(["A -> B"]))
        clash = Database([Relation.from_strings("R", "AB", ["a1.b1", "a1.b2"])])
        clean = Database([Relation.from_strings("R", "AB", ["a1.b1", "a2.b2"])])
        assert not engine.chase_database(clash).consistent
        # The failed run must leave no residue that corrupts the next one.
        assert engine.chase_database(clean).consistent
        assert not engine.chase_database(clash).consistent

    def test_engine_exposes_its_fds(self):
        fds = parse_fd_set(["A -> B"])
        assert ChaseEngine(fds).fds == fds

    def test_mismatched_engine_rejected(self):
        from repro.errors import ConsistencyError

        database = Database([Relation.from_strings("R", "AB", ["a1.b1"])])
        wrong_engine = ChaseEngine(parse_fd_set(["B -> A"]))
        with pytest.raises(ConsistencyError):
            weak_instance_consistency(database, parse_fd_set(["A -> B"]), engine=wrong_engine)

    def test_weak_instance_consistency_accepts_prebuilt_engine(self):
        fds = parse_fd_set(["A -> B", "B -> C"])
        engine = ChaseEngine(fds)
        database = Database(
            [
                Relation.from_strings("R", "AB", ["a1.b1"]),
                Relation.from_strings("S", "BC", ["b1.c1"]),
            ]
        )
        with_engine = weak_instance_consistency(database, fds, engine=engine)
        without = weak_instance_consistency(database, fds)
        assert with_engine.consistent == without.consistent
        assert with_engine.witness == without.witness
