"""Tests for repro.relational.schema."""

import pytest

from repro.errors import SchemaError
from repro.relational.attributes import AttributeSet
from repro.relational.schema import DatabaseScheme, RelationScheme


class TestRelationScheme:
    def test_basic_construction(self):
        scheme = RelationScheme("R", "ABC")
        assert scheme.name == "R"
        assert scheme.attributes == AttributeSet("ABC")

    def test_empty_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationScheme("R", [])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationScheme("", "A")

    def test_semantic_key_ignores_name(self):
        # Partition semantics: two schemes over the same attributes have the
        # same meaning regardless of the relation name (§3.1).
        assert RelationScheme("R", "ABC").semantic_key() == RelationScheme("R1", "ABC").semantic_key()

    def test_equality_uses_name_and_attributes(self):
        assert RelationScheme("R", "AB") == RelationScheme("R", "BA")
        assert RelationScheme("R", "AB") != RelationScheme("S", "AB")

    def test_rename(self):
        assert RelationScheme("R", "AB").rename("S") == RelationScheme("S", "AB")

    def test_contains(self):
        assert "A" in RelationScheme("R", "AB")
        assert "C" not in RelationScheme("R", "AB")

    def test_str(self):
        assert str(RelationScheme("R", "BA")) == "R[AB]"


class TestDatabaseScheme:
    def test_universe_is_union(self):
        scheme = DatabaseScheme([RelationScheme("R", "AB"), RelationScheme("S", "BC")])
        assert scheme.universe == AttributeSet("ABC")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseScheme([RelationScheme("R", "AB"), RelationScheme("R", "BC")])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseScheme([])

    def test_lookup_by_name(self):
        r = RelationScheme("R", "AB")
        scheme = DatabaseScheme([r])
        assert scheme.scheme("R") == r
        with pytest.raises(SchemaError):
            scheme.scheme("S")

    def test_iteration_and_len(self):
        scheme = DatabaseScheme([RelationScheme("R", "AB"), RelationScheme("S", "BC")])
        assert len(scheme) == 2
        assert [s.name for s in scheme] == ["R", "S"]
        assert "R" in scheme and "T" not in scheme
