"""Tests for repro.dependencies.satisfaction (Definition 7 and the direct characterizations)."""

import pytest
from hypothesis import given, settings

from repro.dependencies.satisfaction import (
    expression_partition,
    relation_satisfies_all_pds,
    relation_satisfies_pd,
    satisfies_fd_characterization,
    satisfies_order_sum_characterization,
    satisfies_product_characterization,
    satisfies_sum_characterization,
)
from repro.errors import DependencyError
from repro.relational.functional_dependencies import FunctionalDependency
from repro.relational.relations import Relation
from repro.relational.schema import RelationScheme

from tests.conftest import small_relations


class TestDefinition7:
    def test_fd_correspondence(self, employee_relation):
        # Theorem 3b: r |= X -> Y iff I(r) |= X = X·Y.
        assert employee_relation.satisfies_fd(FunctionalDependency("A", "B"))
        assert relation_satisfies_pd(employee_relation, "A = A*B")
        assert not employee_relation.satisfies_fd(FunctionalDependency("B", "A"))
        assert not relation_satisfies_pd(employee_relation, "B = B*A")

    def test_empty_relation_satisfies_everything(self):
        empty = Relation(RelationScheme("r", "ABC"), [])
        assert relation_satisfies_pd(empty, "C = A + B")
        assert relation_satisfies_all_pds(empty, ["A = B", "C = A*B"])

    def test_missing_attributes_raise(self, employee_relation):
        with pytest.raises(DependencyError):
            relation_satisfies_pd(employee_relation, "A = A*Z")

    def test_product_pd_characterization_I(self):
        # (I): r |= C = A·B iff agreeing on C <=> agreeing on A and B.
        good = Relation.from_strings("r", "ABC", ["a1.b1.c1", "a1.b2.c2", "a2.b1.c3"])
        bad = Relation.from_strings("r", "ABC", ["a1.b1.c1", "a1.b1.c2"])
        assert relation_satisfies_pd(good, "C = A*B")
        assert satisfies_product_characterization(good, "C", "A", "B")
        assert not relation_satisfies_pd(bad, "C = A*B")
        assert not satisfies_product_characterization(bad, "C", "A", "B")

    def test_sum_pd_characterization_II(self):
        # (II): r |= C = A + B iff C labels the chain-connectivity classes.
        connected = Relation.from_strings(
            "r", "ABC", ["x1.y1.c1", "x1.y2.c1", "x3.y2.c1", "x9.y9.c2"]
        )
        assert relation_satisfies_pd(connected, "C = A + B")
        assert satisfies_sum_characterization(connected, "C", "A", "B")
        broken = Relation.from_strings("r", "ABC", ["x1.y1.c1", "x1.y2.c2"])
        assert not relation_satisfies_pd(broken, "C = A + B")
        assert not satisfies_sum_characterization(broken, "C", "A", "B")

    def test_order_sum_characterization(self):
        # C <= A+B: same C implies chain-connected, but not necessarily conversely.
        relation = Relation.from_strings("r", "ABC", ["x1.y1.c1", "x1.y2.c2"])
        assert satisfies_order_sum_characterization(relation, "C", "A", "B")
        assert not satisfies_sum_characterization(relation, "C", "A", "B")

    def test_fd_characterization_matches_classical(self, employee_relation):
        assert satisfies_fd_characterization(employee_relation, ["A"], ["B"]) == employee_relation.satisfies_fd(
            FunctionalDependency("A", "B")
        )

    def test_expression_partition_block_structure(self):
        relation = Relation.from_strings("r", "AB", ["a1.b1", "a1.b2", "a2.b2"])
        by_a = expression_partition(relation, "A")
        assert by_a.block_count() == 2
        by_sum = expression_partition(relation, "A + B")
        assert by_sum.block_count() == 1


class TestCharacterizationAgreementProperty:
    @given(small_relations())
    @settings(max_examples=60, deadline=None)
    def test_product_characterization_agrees_with_definition7(self, relation):
        assert satisfies_product_characterization(relation, "C", "A", "B") == relation_satisfies_pd(
            relation, "C = A*B"
        )

    @given(small_relations())
    @settings(max_examples=60, deadline=None)
    def test_sum_characterization_agrees_with_definition7(self, relation):
        assert satisfies_sum_characterization(relation, "C", "A", "B") == relation_satisfies_pd(
            relation, "C = A + B"
        )

    @given(small_relations())
    @settings(max_examples=60, deadline=None)
    def test_fd_and_fpd_always_agree(self, relation):
        # Theorem 3b on random relations.
        fd = FunctionalDependency("AB", "C")
        assert relation.satisfies_fd(fd) == relation_satisfies_pd(relation, "A*B = A*B*C")
