"""Tests for repro.lattice.quotient — L_E fragments and finite counterexamples (Theorem 8)."""

import pytest

from repro.dependencies.pd import PartitionDependency
from repro.errors import LatticeError
from repro.expressions.parser import parse_expression
from repro.implication.alg import pd_implies
from repro.lattice.quotient import finite_counterexample, quotient_fragment, theorem8_pool


class TestQuotientFragment:
    def test_classes_collapse_equivalent_expressions(self):
        pool = [parse_expression(t) for t in ["A", "B", "A*B", "B*A", "A*A*B"]]
        fragment = quotient_fragment([], pool)
        # A*B, B*A, A*A*B are all =_id equivalent: 3 classes remain (A, B, A*B).
        assert len(fragment) == 3

    def test_equations_merge_classes(self):
        pool = [parse_expression(t) for t in ["A", "B"]]
        fragment = quotient_fragment(["A = B"], pool)
        assert len(fragment) == 1

    def test_order_reflects_leq(self):
        pool = [parse_expression(t) for t in ["A", "A*B", "A+B"]]
        fragment = quotient_fragment([], pool)
        index = {str(r): i for i, r in enumerate(fragment.representatives)}
        assert fragment.leq(index["(A * B)"], index["A"])
        assert fragment.leq(index["A"], index["(A + B)"])
        assert not fragment.leq(index["A"], index["(A * B)"])

    def test_index_of(self):
        pool = [parse_expression(t) for t in ["A", "B", "A*B"]]
        fragment = quotient_fragment([], pool)
        assert fragment.index_of(parse_expression("B*A")) >= 0
        assert fragment.index_of(parse_expression("A + B")) == -1

    def test_shared_engine_accepts_any_dependency_order(self):
        # The engine contract compares PD *sets*: an engine whose dependency
        # list differs only in order (or repeats a member) must be accepted.
        from repro.implication.alg import ImplicationEngine

        pds = ["A = A*B", "B = B*C"]
        pool = [parse_expression(t) for t in ["A", "B", "C", "A*B"]]
        forward = quotient_fragment(pds, pool, engine=ImplicationEngine(pds))
        backward = quotient_fragment(pds, pool, engine=ImplicationEngine(list(reversed(pds))))
        assert forward.representatives == backward.representatives
        assert forward.order == backward.order
        with pytest.raises(LatticeError):
            quotient_fragment(pds, pool, engine=ImplicationEngine(["A = A*C"]))


class TestFiniteCounterexample:
    def test_none_when_implied(self):
        assert finite_counterexample(["A = A*B", "B = B*C"], "A = A*C") is None

    def test_counterexample_for_unimplied_fpd(self):
        lattice = finite_counterexample(["A = A*B"], "B = B*A")
        assert lattice is not None
        assert lattice.satisfies("A = A*B")
        assert not lattice.satisfies("B = B*A")

    def test_counterexample_for_sum_query(self):
        lattice = finite_counterexample([], "A = A + B")
        assert lattice is not None
        assert not lattice.satisfies("A = A + B")

    def test_counterexample_satisfies_all_of_e(self):
        E = ["A = A*B", "C = C*B"]
        query = "A = A*C"
        assert not pd_implies(E, query)
        lattice = finite_counterexample(E, query)
        assert lattice is not None
        assert lattice.satisfies_all(E)
        assert not lattice.satisfies(query)

    def test_pool_budget_enforced(self):
        with pytest.raises(LatticeError):
            theorem8_pool([], PartitionDependency.parse("A*(B+C*(D+E)) = A"), max_pool=10)

    def test_pool_contains_all_bounded_expressions(self):
        pool = theorem8_pool([], PartitionDependency.parse("A = A*B"))
        assert parse_expression("A") in pool
        assert parse_expression("B + A") in pool
        assert len(pool) == 2 + 8  # 2 attributes + 8 expressions with one operator
