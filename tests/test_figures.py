"""Tests for repro.figures: every claim of Figures 1–3 must evaluate to True."""

from repro.figures import figure1, figure2, figure3


class TestFigure1:
    def test_all_checks_pass(self):
        assert all(figure1.build().checks().values())

    def test_report_mentions_every_claim(self):
        report = figure1.report()
        assert "FAIL" not in report
        assert "not distributive" in report.lower() or "NOT distributive" in report

    def test_lattice_size(self):
        figure = figure1.build()
        # L(I) of Figure 1: the three atomic partitions plus A+C and the product/bottom.
        assert len(figure.lattice) == 5

    def test_interpretation_matches_paper_population(self):
        figure = figure1.build()
        assert figure.interpretation.population("A") == {1, 2, 3, 4}
        assert figure.interpretation.atomic_partition("B").block_count() == 2


class TestFigure2:
    def test_all_checks_pass(self):
        assert all(figure2.build().checks().values())

    def test_isomorphism_is_a_real_lattice_isomorphism(self):
        from repro.lattice.properties import is_homomorphism

        figure = figure2.build()
        mapping = figure.isomorphism()
        assert mapping is not None
        assert is_homomorphism(figure.lattice1.lattice, figure.lattice2.lattice, mapping)
        assert len(set(mapping.values())) == len(mapping)

    def test_report_has_no_failures(self):
        assert "FAIL" not in figure2.report()

    def test_r1_r2_differ_on_the_mvd_but_not_on_any_tested_pd(self):
        figure = figure2.build()
        # Spot-check a few PDs: the two relations agree on all of them, as
        # Theorem 5 predicts for every PD.
        for pd in ["A = A*B", "B = B*C", "C = A + B", "A = B + C", "B = B*A*C"]:
            assert figure.r1.satisfies_pd(pd) == figure.r2.satisfies_pd(pd), pd


class TestFigure3:
    def test_all_checks_pass(self):
        assert all(figure3.build().checks().values())

    def test_raw_layout_matches_paper_schemes(self):
        figure = figure3.build()
        database = figure.raw_instance.database
        assert set(database.scheme.names) == {"R0", "R1"}
        assert set(database.relation("R1").attributes) == {"A", "A4", "B1", "B2", "B3", "B4"}

    def test_corrected_reduction_consistent_for_the_satisfiable_clause(self):
        figure = figure3.build()
        result = figure.solve_corrected()
        assert result.consistent == figure.oracle_satisfiable() is True

    def test_report_has_no_failures(self):
        assert "FAIL" not in figure3.report()
