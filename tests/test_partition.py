"""Tests for repro.partitions.partition (the Partition value type and its operations)."""

import pytest

from repro.errors import PartitionError
from repro.partitions.partition import Partition, partition_from_mapping


class TestConstruction:
    def test_blocks_population(self):
        p = Partition([{1, 2}, {3}])
        assert p.population == {1, 2, 3}
        assert p.block_count() == 2

    def test_empty_partition(self):
        p = Partition()
        assert p.is_empty() and p.population == frozenset()

    def test_empty_block_rejected(self):
        with pytest.raises(PartitionError):
            Partition([set()])

    def test_overlapping_blocks_rejected(self):
        with pytest.raises(PartitionError):
            Partition([{1, 2}, {2, 3}])

    def test_discrete_and_indiscrete(self):
        assert Partition.discrete([1, 2, 3]).block_count() == 3
        assert Partition.indiscrete([1, 2, 3]).block_count() == 1
        assert Partition.indiscrete([]).is_empty()

    def test_from_function(self):
        p = Partition.from_function(range(6), lambda i: i % 2)
        assert p.block_count() == 2
        assert p.together(0, 2) and not p.together(0, 1)

    def test_from_equivalence_pairs(self):
        p = Partition.from_equivalence_pairs([1, 2, 3, 4], [(1, 2), (2, 3)])
        assert p.together(1, 3)
        assert not p.together(1, 4)

    def test_from_equivalence_pairs_unknown_element(self):
        with pytest.raises(PartitionError):
            Partition.from_equivalence_pairs([1, 2], [(1, 9)])

    def test_from_mapping(self):
        p = partition_from_mapping({1: "x", 2: "x", 3: "y"})
        assert p.together(1, 2) and not p.together(1, 3)


class TestAccessors:
    def test_block_of(self):
        p = Partition([{1, 2}, {3}])
        assert p.block_of(1) == {1, 2}
        with pytest.raises(PartitionError):
            p.block_of(9)

    def test_contains_and_len_and_iter(self):
        p = Partition([{1, 2}, {3}])
        assert 1 in p and 9 not in p
        assert len(p) == 2
        assert {frozenset(b) for b in p} == {frozenset({1, 2}), frozenset({3})}

    def test_equality_and_hash(self):
        assert Partition([{1, 2}, {3}]) == Partition([{3}, {2, 1}])
        assert hash(Partition([{1}])) == hash(Partition([{1}]))

    def test_restrict(self):
        p = Partition([{1, 2}, {3, 4}])
        assert p.restrict({1, 3, 4}) == Partition([{1}, {3, 4}])
        with pytest.raises(PartitionError):
            p.restrict({9})


class TestProductSum:
    def test_product_same_population_is_common_refinement(self):
        p = Partition([{1, 2}, {3, 4}])
        q = Partition([{1, 3}, {2, 4}])
        assert p * q == Partition.discrete([1, 2, 3, 4])

    def test_sum_same_population_is_common_coarsening(self):
        p = Partition([{1, 2}, {3, 4}])
        q = Partition([{2, 3}, {4}, {1}])
        assert p + q == Partition([{1, 2, 3, 4}])

    def test_product_different_populations_intersects(self):
        p = Partition([{1, 2}, {3}])
        q = Partition([{2, 3}, {4}])
        result = p * q
        assert result.population == {2, 3}
        assert result == Partition([{2}, {3}])

    def test_product_disjoint_populations_is_empty(self):
        assert (Partition([{1}]) * Partition([{2}])).is_empty()

    def test_sum_different_populations_unions(self):
        # Example c of the paper: disjoint populations -> the sum is the union
        # of the two block families.
        cars = Partition([{1, 2}, {3}])
        bikes = Partition([{4}, {5, 6}])
        assert cars + bikes == Partition([{1, 2}, {3}, {4}, {5, 6}])

    def test_sum_chains_through_overlapping_blocks(self):
        p = Partition([{1, 2}, {3, 4}])
        q = Partition([{2, 3}, {5}])
        result = p + q
        assert result.together(1, 4)
        assert result.population == {1, 2, 3, 4, 5}

    def test_refines_requires_population_containment(self):
        finer = Partition([{1}, {2}])
        coarser = Partition([{1, 2}, {3}])
        assert finer.refines(coarser)
        assert not coarser.refines(finer)

    def test_natural_order_via_operators(self):
        finer = Partition([{1}, {2}])
        coarser = Partition([{1, 2}])
        assert finer <= coarser
        assert coarser >= finer
        # x <= y iff x = x*y iff y = y + x  (§2.2)
        assert finer * coarser == finer
        assert coarser + finer == coarser
