"""Parser/printer round-trip properties: ``parse(render(e)) is e`` (hash-consed identity).

The printer contract (``to_infix`` emits the minimal-parenthesis form the
parser inverts exactly) had no direct test; the wire codecs now lean on it
for every expression crossing a process boundary, so it is pinned here:

* randomized round-trips through every rendering style (``to_infix``,
  ``to_paper``, ``str``) come back as the *same interned object*;
* precedence and associativity edge cases build exactly the expected trees;
* minimality: ``to_infix`` output never contains a redundant paren pair
  (checked by re-parsing with each paren pair removed — the result must
  differ or fail).
"""

import pytest

from repro.expressions.ast import Product, Sum, attrs
from repro.expressions.parser import parse_expression
from repro.expressions.printer import to_infix, to_paper, to_prefix
from repro.workloads.random_expressions import random_expression

A, B, C, D = attrs("A", "B", "C", "D")

UNIVERSES = [
    ["A", "B", "C"],
    ["A", "B", "C", "D", "E"],
    # Multi-character names exercise the tokenizer's maximal-munch rule.
    ["A1", "B2", "employee_nr", "dept"],
]


class TestRandomizedRoundTrip:
    @pytest.mark.parametrize("universe", UNIVERSES, ids=["abc", "abcde", "long-names"])
    def test_parse_inverts_to_infix_on_random_expressions(self, universe):
        for seed in range(150):
            expression = random_expression(universe, seed=seed, max_complexity=6)
            assert parse_expression(to_infix(expression)) is expression

    def test_parse_inverts_paper_style(self):
        for seed in range(100):
            expression = random_expression(["A", "B", "C", "D"], seed=seed, max_complexity=5)
            assert parse_expression(to_paper(expression)) is expression
            # The paper's ``·`` product notation parses too.
            assert parse_expression(to_paper(expression, product_symbol="·")) is expression

    def test_parse_inverts_str(self):
        for seed in range(100):
            expression = random_expression(["A", "B", "C", "D"], seed=seed, max_complexity=5)
            assert parse_expression(str(expression)) is expression

    def test_product_bias_extremes_round_trip(self):
        for seed in range(40):
            for bias in (0.0, 1.0):
                expression = random_expression(
                    ["A", "B", "C"], seed=seed, max_complexity=5, product_bias=bias
                )
                assert parse_expression(to_infix(expression)) is expression


class TestPrecedenceEdgeCases:
    def test_product_binds_tighter_than_sum(self):
        assert parse_expression("A + B * C") is Sum(A, Product(B, C))
        assert parse_expression("A * B + C") is Sum(Product(A, B), C)

    def test_parentheses_override_precedence(self):
        assert parse_expression("(A + B) * C") is Product(Sum(A, B), C)
        assert parse_expression("A * (B + C)") is Product(A, Sum(B, C))

    def test_left_associativity(self):
        assert parse_expression("A + B + C") is Sum(Sum(A, B), C)
        assert parse_expression("A * B * C") is Product(Product(A, B), C)
        assert parse_expression("A + B + C + D") is Sum(Sum(Sum(A, B), C), D)

    def test_right_nested_operands_need_parens(self):
        right_nested = Sum(A, Sum(B, C))
        rendered = to_infix(right_nested)
        assert rendered == "A + (B + C)"
        assert parse_expression(rendered) is right_nested
        assert parse_expression(rendered) is not parse_expression("A + B + C")

    def test_nested_parens_collapse_to_same_node(self):
        assert parse_expression("((A))") is A
        assert parse_expression("(((A + B)))") is Sum(A, B)
        assert parse_expression("( (A) * ((B)) )") is Product(A, B)

    def test_mixed_depth_example(self):
        expression = Product(Sum(Product(A, B), C), Sum(A, D))
        assert to_infix(expression) == "(A * B + C) * (A + D)"
        assert parse_expression(to_infix(expression)) is expression

    def test_to_prefix_is_explicit_about_associativity(self):
        assert to_prefix(parse_expression("A + B + C")) == "(+ (+ A B) C)"
        assert to_prefix(parse_expression("A + (B + C)")) == "(+ A (+ B C))"


class TestMinimality:
    """``to_infix`` never emits parentheses the grammar does not require."""

    def _paren_spans(self, text: str):
        stack = []
        for position, char in enumerate(text):
            if char == "(":
                stack.append(position)
            elif char == ")":
                yield stack.pop(), position

    @pytest.mark.parametrize("seed", range(60))
    def test_every_paren_pair_is_load_bearing(self, seed):
        expression = random_expression(["A", "B", "C", "D"], seed=seed, max_complexity=6)
        rendered = to_infix(expression)
        for open_at, close_at in self._paren_spans(rendered):
            stripped = (
                rendered[:open_at] + rendered[open_at + 1 : close_at] + rendered[close_at + 1 :]
            )
            try:
                reparsed = parse_expression(stripped)
            except Exception:
                continue  # removing the pair broke the syntax: load-bearing
            assert reparsed is not expression, (
                f"redundant parens in {rendered!r}: {stripped!r} parses identically"
            )
