"""Tests for repro.consistency.cad (Theorem 6b / Theorem 11: the CAD+EAP consistency solver)."""

import pytest

from repro.consistency.cad import cad_consistency, cad_consistency_for_fpds, verify_cad_witness
from repro.errors import ConsistencyError
from repro.partitions.assumptions import satisfies_cad, satisfies_eap
from repro.relational.database import Database
from repro.relational.functional_dependencies import parse_fd_set
from repro.relational.relations import Relation


class TestCadConsistency:
    def test_single_relation_no_unknowns(self):
        database = Database.single(Relation.from_strings("R", "AB", ["a1.b1", "a2.b2"]))
        result = cad_consistency(database, parse_fd_set(["A -> B"]))
        assert result.consistent
        assert verify_cad_witness(database, parse_fd_set(["A -> B"]), result.witness)

    def test_single_relation_direct_violation(self):
        database = Database.single(Relation.from_strings("R", "AB", ["a1.b1", "a1.b2"]))
        result = cad_consistency(database, parse_fd_set(["A -> B"]))
        assert not result.consistent

    def test_cross_relation_fill_in_succeeds(self):
        # S's tuple must take B = b1 (the only symbol under B) which is consistent.
        database = Database(
            [
                Relation.from_strings("R", "AB", ["a1.b1"]),
                Relation.from_strings("S", "AC", ["a1.c1"]),
            ]
        )
        fds = parse_fd_set(["A -> B"])
        result = cad_consistency(database, fds)
        assert result.consistent
        assert verify_cad_witness(database, fds, result.witness)

    def test_fill_in_fails_when_domains_conflict(self):
        # R says a1 -> b1, T says a2 -> b2; U[AC] tuple (a1, c1) and V[BC] tuple (b2, c1)
        # with FDs A -> B and C -> B force the U tuple's B to be both b1 and b2.
        database = Database(
            [
                Relation.from_strings("R", "AB", ["a1.b1"]),
                Relation.from_strings("T", "AB", ["a2.b2"]),
                Relation.from_strings("U", "AC", ["a1.c1"]),
                Relation.from_strings("V", "BC", ["b2.c1"]),
            ]
        )
        fds = parse_fd_set(["A -> B", "C -> B"])
        result = cad_consistency(database, fds)
        assert not result.consistent

    def test_contrast_with_open_world_weak_instance(self):
        # Under the open-world weak instance assumption new symbols are allowed,
        # so this database is consistent; under CAD it is not, because the only
        # symbol available under B forces a violation of A -> B.
        from repro.relational.weak_instance import is_consistent_with_fds

        database = Database(
            [
                Relation.from_strings("R", "AB", ["a1.b1"]),
                Relation.from_strings("S", "A", ["a2"]),
                Relation.from_strings("T", "BC", ["b1.c1", "b2.c2"]),
            ]
        )
        fds = parse_fd_set(["B -> A"])
        assert is_consistent_with_fds(database, fds)
        # Under CAD the S tuple must reuse b1 or b2 for its B column; either
        # choice forces its A value (a2) to clash with a1 via B -> A... only if
        # both b1 and b2 are taken.  Build the clash explicitly:
        database2 = Database(
            [
                Relation.from_strings("R", "AB", ["a1.b1", "a1.b2"]),
                Relation.from_strings("S", "A", ["a2"]),
            ]
        )
        assert is_consistent_with_fds(database2, parse_fd_set(["B -> A"]))
        result = cad_consistency(database2, parse_fd_set(["B -> A"]))
        assert not result.consistent

    def test_witness_satisfies_cad_and_eap_as_interpretation(self):
        database = Database(
            [
                Relation.from_strings("R", "AB", ["a1.b1"]),
                Relation.from_strings("S", "BC", ["b1.c1"]),
            ]
        )
        fds = parse_fd_set(["A -> B", "B -> C"])
        result = cad_consistency(database, fds)
        assert result.consistent
        assert result.interpretation is not None
        assert satisfies_eap(result.interpretation)
        assert satisfies_cad(result.interpretation, database)
        assert result.interpretation.satisfies_database(database)

    def test_node_budget_enforced(self):
        database = Database(
            [
                Relation.from_strings("R", "AB", ["a1.b1", "a2.b2", "a3.b3"]),
                Relation.from_strings("S", "CD", ["c1.d1", "c2.d2", "c3.d3"]),
            ]
        )
        with pytest.raises(ConsistencyError):
            cad_consistency(database, parse_fd_set(["A -> B"]), max_nodes=1)

    def test_fd_outside_universe_rejected(self):
        database = Database.single(Relation.from_strings("R", "AB", ["a.b"]))
        with pytest.raises(ConsistencyError):
            cad_consistency(database, parse_fd_set(["A -> Z"]))

    def test_fpd_entry_point(self):
        database = Database.single(Relation.from_strings("R", "AB", ["a1.b1", "a2.b2"]))
        assert cad_consistency_for_fpds(database, ["A = A*B"]).consistent

    def test_debug_rescan_cross_checks_incremental_buckets(self):
        # debug_rescan=True re-runs the full FD rescan after every incremental
        # bucket update and raises on any divergence; a consistent and an
        # inconsistent instance both have to survive the cross-check.
        database = Database(
            [
                Relation.from_strings("R", "AB", ["a1.b1", "a2.b2"]),
                Relation.from_strings("S", "AC", ["a1.c1", "a2.c2"]),
            ]
        )
        fds = parse_fd_set(["A -> B", "C -> B"])
        result = cad_consistency(database, fds, debug_rescan=True)
        assert result.consistent
        assert verify_cad_witness(database, fds, result.witness)
        bad = Database(
            [
                Relation.from_strings("R", "AB", ["a1.b1"]),
                Relation.from_strings("T", "AB", ["a2.b2"]),
                Relation.from_strings("U", "AC", ["a1.c1"]),
                Relation.from_strings("V", "BC", ["b2.c1"]),
            ]
        )
        assert not cad_consistency(bad, parse_fd_set(["A -> B", "C -> B"]), debug_rescan=True).consistent

    def test_incremental_checker_matches_rescan_on_random_databases(self):
        import random

        from repro.workloads.random_dependencies import random_fd_set

        rng = random.Random(20260730)
        explored = 0
        for _ in range(25):
            relations = []
            for i in range(rng.randint(1, 3)):
                attrs = "".join(sorted(rng.sample("ABCD", rng.randint(1, 3))))
                rows = [
                    ".".join(f"{a.lower()}{rng.randint(1, 2)}" for a in attrs)
                    for _ in range(rng.randint(1, 3))
                ]
                relations.append(Relation.from_strings(f"R{i}", attrs, rows))
            database = Database(relations)
            fds = [
                fd
                for fd in random_fd_set(4, rng.randint(1, 3), seed=rng.randrange(10**6), max_side=2)
                if set(fd.attributes) <= set(database.universe)
            ]
            result = cad_consistency(database, fds, max_nodes=20000, debug_rescan=True)
            explored += result.search_nodes
            if result.consistent:
                assert verify_cad_witness(database, fds, result.witness)
        assert explored > 0

    def test_empty_domain_for_needed_column_is_inconsistent(self):
        # No relation ever mentions a symbol under C, yet C is in the universe
        # through the scheme of an empty relation: any padded tuple needs a C
        # value but CAD offers none.
        from repro.relational.schema import RelationScheme

        database = Database(
            [
                Relation.from_strings("R", "AB", ["a.b"]),
                Relation(RelationScheme("S", "C"), []),
            ]
        )
        result = cad_consistency(database, [])
        assert not result.consistent
