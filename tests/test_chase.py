"""Tests for repro.relational.chase (labelled nulls, representative instance, FD chase)."""

import pytest

from repro.errors import ConsistencyError
from repro.relational.chase import (
    Tableau,
    TableauValue,
    chase_database,
    representative_instance,
)
from repro.relational.database import Database
from repro.relational.functional_dependencies import parse_fd_set
from repro.relational.relations import Relation


class TestTableau:
    def test_add_row_pads_with_fresh_nulls(self):
        tableau = Tableau("ABC")
        index = tableau.add_row({"A": "a"})
        assert tableau.value(index, "A") == TableauValue.constant("a")
        assert not tableau.value(index, "B").is_constant
        assert tableau.value(index, "B") != tableau.value(index, "C")

    def test_empty_universe_rejected(self):
        with pytest.raises(ConsistencyError):
            Tableau([])

    def test_equate_null_with_constant_prefers_constant(self):
        tableau = Tableau("A")
        i = tableau.add_row({})
        null = tableau.value(i, "A")
        assert tableau.equate(null, TableauValue.constant("a"))
        assert tableau.value(i, "A") == TableauValue.constant("a")

    def test_equate_two_distinct_constants_fails(self):
        tableau = Tableau("A")
        assert not tableau.equate(TableauValue.constant("a"), TableauValue.constant("b"))

    def test_to_relation_renders_nulls_distinctly(self):
        tableau = Tableau("AB")
        tableau.add_row({"A": "a"})
        relation = tableau.to_relation()
        row = next(iter(relation.rows))
        assert row["A"] == "a"
        assert row["B"].startswith("⊥")


class TestRepresentativeInstance:
    def test_one_row_per_tuple_padded_to_universe(self):
        database = Database(
            [
                Relation.from_strings("R", "AB", ["a1.b1", "a2.b2"]),
                Relation.from_strings("S", "BC", ["b1.c1"]),
            ]
        )
        tableau = representative_instance(database)
        assert tableau.row_count == 3
        assert tableau.attributes == database.universe

    def test_universe_must_cover_database(self):
        database = Database([Relation.from_strings("R", "AB", ["a.b"])])
        with pytest.raises(ConsistencyError):
            representative_instance(database, universe=database.universe - {"B"})


class TestChase:
    def test_consistent_database(self):
        database = Database(
            [
                Relation.from_strings("R", "AB", ["a1.b1"]),
                Relation.from_strings("S", "BC", ["b1.c1"]),
            ]
        )
        result = chase_database(database, parse_fd_set(["A -> B", "B -> C"]))
        assert result.consistent

    def test_inconsistent_database(self):
        # B -> C is violated across the two S tuples once they join through b1.
        database = Database([Relation.from_strings("S", "BC", ["b1.c1", "b1.c2"])])
        result = chase_database(database, parse_fd_set(["B -> C"]))
        assert not result.consistent
        assert result.violation is not None

    def test_cross_relation_propagation(self):
        # R(a1, b1), R'(a1, b2) with A -> B: chase must equate b1 and b2 -> inconsistent.
        database = Database(
            [
                Relation.from_strings("R", "AB", ["a1.b1"]),
                Relation.from_strings("S", "AB", ["a1.b2"]).rename_relation("T"),
            ]
        )
        result = chase_database(database, parse_fd_set(["A -> B"]))
        assert not result.consistent

    def test_null_equating_counts_steps(self):
        database = Database(
            [
                Relation.from_strings("R", "AB", ["a1.b1"]),
                Relation.from_strings("S", "AC", ["a1.c1"]),
            ]
        )
        result = chase_database(database, parse_fd_set(["A -> B"]))
        assert result.consistent
        assert result.steps >= 1  # the S tuple's B null is equated with b1

    def test_chase_extends_universe_with_fd_attributes(self):
        database = Database([Relation.from_strings("R", "AB", ["a.b"])])
        result = chase_database(database, parse_fd_set(["A -> C"]))
        assert result.consistent
        assert "C" in result.tableau.attributes

    def test_chase_is_idempotent(self):
        database = Database([Relation.from_strings("R", "AB", ["a1.b1", "a2.b1"])])
        fds = parse_fd_set(["B -> A"])
        result = chase_database(database, fds)
        assert not result.consistent
