"""Tests for repro.implication.alg — the ALG decision procedure (Theorem 9, §5.2)."""

import random

from hypothesis import given, settings

from repro.dependencies.conversion import fd_to_pd, fds_to_pds
from repro.dependencies.pd import PartitionDependency
from repro.implication.alg import (
    ImplicationEngine,
    alg_closure,
    alg_closure_naive,
    pd_equivalent,
    pd_implies,
    pd_implies_all,
    pd_leq,
)
from repro.implication.identities import identically_leq
from repro.relational.functional_dependencies import implies as fd_implies
from repro.workloads.random_dependencies import random_fd_set, random_pd_set
from repro.workloads.random_expressions import random_expression

from tests.conftest import expressions


class TestBasicImplication:
    def test_empty_e_reduces_to_identities(self):
        assert pd_implies([], "A * (A + B) = A")
        assert not pd_implies([], "A = B")

    def test_fd_style_transitivity(self):
        E = ["A = A*B", "B = B*C"]
        assert pd_leq(E, "A", "C")
        assert pd_implies(E, "A = A*C")
        assert not pd_implies(E, "C = C*A")

    def test_sum_pd_consequences(self):
        E = ["C = A + B"]
        assert pd_leq(E, "A", "C")
        assert pd_leq(E, "B", "C")
        assert pd_implies(E, "C = B + A")
        assert pd_implies(E, "C + A = C")
        assert not pd_leq(E, "C", "A")

    def test_equation_used_both_directions(self):
        E = ["A = B"]
        assert pd_leq(E, "A", "B") and pd_leq(E, "B", "A")
        assert pd_implies(E, "B = A")

    def test_mixed_sum_and_product(self):
        # C = A + B and A = A*D, B = B*D imply C = C*D (C <= D).
        E = ["C = A + B", "A = A*D", "B = B*D"]
        assert pd_implies(E, "C = C*D")

    def test_theorem4_equivalent_formulations(self):
        # From the discussion after Theorem 4: C = A + B is equivalent to
        # {C = C*(A+B), A = A*C, B = B*C}.
        E1 = ["C = A + B"]
        E2 = ["C = C*(A+B)", "A = A*C", "B = B*C"]
        assert pd_implies_all(E1, E2)
        assert pd_implies_all(E2, E1)
        assert pd_equivalent(E1, E2)

    def test_example_f_equivalence(self):
        # X = Y·Z is equivalent to {X = X·Y·Z, Y·Z = Y·Z·X} (Example f).
        E1 = ["A = B*C"]
        E2 = ["A = A*B*C", "B*C = B*C*A"]
        assert pd_equivalent(E1, E2)

    def test_absorption_consequences_with_e(self):
        E = ["A = B + C"]
        assert pd_implies(E, "A * B = B")
        assert pd_implies(E, "A + B = A")


class TestAgreementWithOtherDeciders:
    def test_agrees_with_fd_closure_on_fpds(self):
        rng = random.Random(7)
        for trial in range(20):
            fds = random_fd_set(4, rng.randint(1, 4), seed=rng.randint(0, 10**6), max_side=2)
            target = random_fd_set(4, 1, seed=rng.randint(0, 10**6), max_side=2)[0]
            expected = fd_implies(fds, target)
            assert pd_implies(fds_to_pds(fds), fd_to_pd(target)) == expected

    def test_empty_e_agrees_with_identity_checker(self):
        rng = random.Random(11)
        universe = ["A", "B", "C"]
        for trial in range(30):
            left = random_expression(universe, rng.randint(0, 10**6), 3)
            right = random_expression(universe, rng.randint(0, 10**6), 3)
            assert pd_leq([], left, right) == identically_leq(left, right)

    def test_naive_and_worklist_closures_agree(self):
        rng = random.Random(13)
        for trial in range(10):
            pds = random_pd_set(3, rng.randint(1, 3), seed=rng.randint(0, 10**6), max_complexity=2)
            extra = [random_expression(["A", "B", "C"], rng.randint(0, 10**6), 2)]
            fast = alg_closure(pds, extra)
            slow = alg_closure_naive(pds, extra)
            assert fast.as_expression_pairs() == slow.as_expression_pairs()

    @given(expressions(max_depth=2), expressions(max_depth=2))
    @settings(max_examples=50, deadline=None)
    def test_leq_with_empty_e_is_free_lattice_order(self, left, right):
        assert pd_leq([], left, right) == identically_leq(left, right)


class TestSoundness:
    def test_implied_pds_hold_in_satisfying_relations(self):
        # Soundness spot-check: E |= δ and r |= E  =>  r |= δ.
        from repro.relational.relations import Relation

        E = ["A = A*B", "B = B*C"]
        delta = PartitionDependency.parse("A = A*C")
        assert pd_implies(E, delta)
        satisfying = Relation.from_strings("r", "ABC", ["a1.b1.c1", "a2.b1.c1", "a3.b3.c1"])
        assert satisfying.satisfies_pd(E[0]) and satisfying.satisfies_pd(E[1])
        assert satisfying.satisfies_pd(delta)

    def test_non_implication_has_separating_relation(self):
        # E does not imply B <= A; exhibit a relation separating them.
        from repro.relational.relations import Relation

        E = ["A = A*B"]
        query = "B = B*A"
        assert not pd_implies(E, query)
        witness = Relation.from_strings("r", "AB", ["a1.b1", "a2.b1"])
        assert witness.satisfies_pd(E[0])
        assert not witness.satisfies_pd(query)


class TestImplicationEngine:
    def test_engine_caches_across_queries(self):
        engine = ImplicationEngine(["A = A*B", "B = B*C"], query_expressions=["A", "C"])
        assert engine.leq("A", "C")
        assert engine.leq("A", "B")
        assert not engine.leq("C", "A")

    def test_attribute_order_consequences(self):
        engine = ImplicationEngine(["A = A*B", "B = B*C"])
        pairs = engine.attribute_order_consequences(["A", "B", "C"])
        assert ("A", "B") in pairs and ("A", "C") in pairs and ("B", "C") in pairs
        assert ("C", "A") not in pairs

    def test_engine_accepts_new_expressions_lazily(self):
        engine = ImplicationEngine(["A = A*B"])
        assert engine.leq("A", "A*B")
        assert engine.leq("A * A", "A")
        assert engine.implies("A*B = A")

    def test_dependencies_property(self):
        engine = ImplicationEngine(["A = A*B"])
        assert engine.dependencies == [PartitionDependency.parse("A = A*B")]
