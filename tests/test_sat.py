"""Tests for repro.sat: formulas, NAE solvers, and the 3CNF normalizations."""

import random

import pytest

from repro.sat.formulas import Clause, CnfFormula, FormulaError, Literal
from repro.sat.nae3sat import (
    complement_assignment,
    count_nae_assignments,
    ensure_both_polarities,
    nae_backtracking,
    nae_brute_force,
    nae_is_satisfiable,
    to_proper_nae3cnf,
)
from repro.workloads.random_formulas import random_3cnf


class TestFormulas:
    def test_literal_parse_and_negate(self):
        assert Literal.parse("~x1") == Literal("x1", False)
        assert Literal.parse("x1").negate() == Literal("x1", False)
        with pytest.raises(FormulaError):
            Literal.parse("")

    def test_clause_evaluation(self):
        clause = Clause.of("x1", "~x2")
        assert clause.evaluate({"x1": False, "x2": False})
        assert not clause.evaluate({"x1": False, "x2": True})

    def test_clause_nae_evaluation(self):
        clause = Clause.of("x1", "x2", "x3")
        assert clause.nae_evaluate({"x1": True, "x2": False, "x3": False})
        assert not clause.nae_evaluate({"x1": True, "x2": True, "x3": True})
        assert not clause.nae_evaluate({"x1": False, "x2": False, "x3": False})

    def test_empty_clause_rejected(self):
        with pytest.raises(FormulaError):
            Clause(())

    def test_formula_variables_sorted(self):
        formula = CnfFormula.of([["x2", "x1", "~x3"]])
        assert formula.variables == ["x1", "x2", "x3"]

    def test_missing_variable_in_assignment(self):
        formula = CnfFormula.of([["x1"]])
        with pytest.raises(FormulaError):
            formula.evaluate({})

    def test_is_3cnf(self):
        assert CnfFormula.of([["x1", "x2", "x3"]]).is_3cnf()


class TestSolvers:
    def test_satisfiable_formula(self):
        formula = CnfFormula.of([["x1", "x2", "~x3"], ["~x1", "x2", "x3"]])
        for solver in (nae_brute_force, nae_backtracking):
            assignment = solver(formula)
            assert assignment is not None and formula.nae_evaluate(assignment)

    def test_unsatisfiable_formula(self):
        # NAE(x1, x1, x1) can never have both a true and a false literal.
        formula = CnfFormula.of([["x1", "x1", "x1"]])
        assert nae_brute_force(formula) is None
        assert nae_backtracking(formula) is None
        assert not nae_is_satisfiable(formula)

    def test_solvers_agree_on_random_formulas(self):
        rng = random.Random(1)
        for trial in range(30):
            formula = random_3cnf(rng.randint(2, 5), rng.randint(1, 6), seed=rng.randint(0, 10**6))
            assert (nae_brute_force(formula) is None) == (nae_backtracking(formula) is None)

    def test_complement_invariance(self):
        formula = CnfFormula.of([["x1", "x2", "~x3"]])
        assignment = nae_brute_force(formula)
        assert assignment is not None
        assert formula.nae_evaluate(complement_assignment(assignment))

    def test_count_assignments_even(self):
        # NAE satisfaction is closed under complement, so the count is even.
        formula = CnfFormula.of([["x1", "x2", "x3"]])
        assert count_nae_assignments(formula) % 2 == 0
        assert count_nae_assignments(formula) == 6


class TestNormalizations:
    def test_proper_3cnf_preserves_satisfiability(self):
        rng = random.Random(2)
        for trial in range(30):
            formula = random_3cnf(
                rng.randint(2, 4), rng.randint(1, 4), seed=rng.randint(0, 10**6), proper=False
            )
            proper = to_proper_nae3cnf(formula)
            assert (nae_brute_force(formula) is None) == (nae_brute_force(proper) is None)
            assert all(len(clause.variables) == 3 or len(clause.variables) == 1 for clause in proper)

    def test_proper_3cnf_drops_tautologies(self):
        formula = CnfFormula.of([["x1", "~x1", "x2"]])
        proper = to_proper_nae3cnf(formula)
        assert all("x1" not in clause.variables or "x2" not in clause.variables for clause in proper)
        assert nae_brute_force(proper) is not None

    def test_two_literal_clause_expansion_means_inequality(self):
        # (x1 v x2) under NAE is x1 != x2; the expansion must preserve exactly that.
        formula = CnfFormula.of([["x1", "x2", "x2"]])
        proper = to_proper_nae3cnf(formula)
        for x1 in (False, True):
            for x2 in (False, True):
                restricted_sat = any(
                    proper.nae_evaluate({"x1": x1, "x2": x2, w: value})
                    for w in [v for v in proper.variables if v.startswith("w_pad")]
                    for value in (False, True)
                ) if len(proper.variables) > 2 else proper.nae_evaluate({"x1": x1, "x2": x2})
                assert restricted_sat == (x1 != x2)

    def test_ensure_both_polarities(self):
        formula = CnfFormula.of([["x1", "x2", "x3"]])
        balanced = ensure_both_polarities(formula)
        polarity: dict[str, set[bool]] = {}
        for clause in balanced:
            for literal in clause:
                polarity.setdefault(literal.variable, set()).add(literal.positive)
        for variable in formula.variables:
            assert polarity[variable] == {True, False}
        # Satisfiability preserved.
        assert (nae_brute_force(formula) is None) == (nae_brute_force(balanced) is None)

    def test_ensure_both_polarities_noop_when_balanced(self):
        formula = CnfFormula.of([["x1", "~x1", "x2"], ["~x2", "x1", "x2"]])
        assert ensure_both_polarities(formula) is formula

    def test_fresh_variable_collision_rejected(self):
        formula = CnfFormula.of([["p_anchor", "x1", "x2"]])
        with pytest.raises(FormulaError):
            ensure_both_polarities(formula)
